"""Experiment runner and figure-harness tests (tiny configurations)."""

import pytest

from repro.config.presets import small_config
from repro.config.topology import (
    Architecture,
    PagePolicy,
    ReplicationPolicy,
)
from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner, RunKey


@pytest.fixture(scope="module")
def runner():
    """A runner on a tiny 4-channel GPU so figure tests stay fast."""
    return ExperimentRunner(base_gpu=small_config(num_channels=4,
                                                  warps_per_sm=4))


class TestRunKey:
    def test_hashable_and_cachable(self):
        a = RunKey("KMEANS")
        b = RunKey("KMEANS")
        assert a == b and hash(a) == hash(b)

    def test_describe_mentions_options(self):
        key = RunKey("AN", Architecture.NUBA,
                     replication=ReplicationPolicy.MDR, noc_gbps=100.0)
        text = key.describe()
        assert "AN" in text and "nuba" in text and "noc=100GB/s" in text


class TestRunnerConfigs:
    def test_gpu_for_noc_override(self, runner):
        key = RunKey("KMEANS", noc_gbps=123.0)
        assert runner.gpu_for(key).noc.total_bandwidth_gbps == 123.0

    def test_gpu_for_size_factor(self, runner):
        key = RunKey("KMEANS", size_factor=2.0)
        gpu = runner.gpu_for(key)
        assert gpu.num_sms == 2 * runner.base_gpu.num_sms
        assert gpu.memory.num_channels == 2 * runner.base_gpu.num_channels

    def test_gpu_for_llc_factor(self, runner):
        key = RunKey("KMEANS", llc_capacity_factor=2.0)
        gpu = runner.gpu_for(key)
        assert gpu.llc_total_bytes == 2 * runner.base_gpu.llc_total_bytes

    def test_gpu_for_page_bytes(self, runner):
        key = RunKey("KMEANS", page_bytes=16384)
        assert runner.gpu_for(key).page_bytes == 16384

    def test_topology_for_policies(self, runner):
        key = RunKey("KMEANS", Architecture.NUBA,
                     replication=ReplicationPolicy.FULL,
                     page_policy=PagePolicy.ROUND_ROBIN,
                     lab_threshold=0.8)
        topo = runner.topology_for(key)
        assert topo.replication is ReplicationPolicy.FULL
        assert topo.page_policy is PagePolicy.ROUND_ROBIN
        assert topo.lab_threshold == 0.8

    def test_mcm_key_builds_mcm_system(self, runner):
        key = RunKey("KMEANS", Architecture.NUBA, mcm_modules=2)
        system = runner.build(key)
        assert hasattr(system, "egress")


class TestRunnerExecution:
    def test_run_caches(self, runner):
        key = RunKey("KMEANS")
        first = runner.run(key)
        count = runner.simulations_run
        second = runner.run(key)
        assert second is first
        assert runner.simulations_run == count

    def test_speedup_of_self(self, runner):
        key = RunKey("KMEANS")
        assert runner.speedup(key, key) == pytest.approx(1.0)

    def test_distinct_keys_rerun(self, runner):
        runner.run(RunKey("KMEANS"))
        count = runner.simulations_run
        runner.run(RunKey("KMEANS", Architecture.NUBA))
        assert runner.simulations_run == count + 1


class TestFigures:
    BENCHES = ["KMEANS", "AN"]

    def test_table2_renders(self):
        result = figures.table2_catalogue()
        assert len(result.rows) == 29
        assert "Table 2" in result.render()

    def test_fig7_shape(self, runner):
        result = figures.fig7_performance(runner, self.BENCHES)
        assert len(result.rows) == 2
        assert "nuba_improvement_all_pct" in result.summary

    def test_fig8_shape(self, runner):
        result = figures.fig8_bandwidth(runner, self.BENCHES)
        assert len(result.rows) == 2

    def test_fig9_uba_always_remote(self, runner):
        result = figures.fig9_miss_breakdown(runner, self.BENCHES)
        assert all(row[1] == "0.0%" for row in result.rows)

    def test_fig11_policies(self, runner):
        result = figures.fig11_page_allocation(runner, ["KMEANS"])
        assert "lab_vs_first_touch_pct" in result.summary

    def test_fig12_replication(self, runner):
        result = figures.fig12_replication(runner, ["AN"])
        assert len(result.rows) == 1

    def test_fig13_energy(self, runner):
        result = figures.fig13_energy(runner, ["KMEANS"])
        assert result.summary["mean_noc_energy_saving_pct"] > 0

    def test_render_contains_summary(self, runner):
        result = figures.fig7_performance(runner, ["KMEANS"],
                                          include_sm_side=False)
        text = result.render()
        assert "Figure 7" in text
        assert "nuba_improvement_all_pct" in text


class TestSweepFigures:
    """The sweep figures on a tiny machine: structure, not magnitudes."""

    def test_fig10_rows_and_power_monotonic(self, runner):
        result = figures.fig10_noc_power(runner, ["KMEANS"])
        assert len(result.rows) == 9  # 3 architectures x 3 NoC points
        # NoC power rises with NoC bandwidth for every architecture.
        for arch in ("UBA", "SM-UBA", "NUBA"):
            powers = [float(r[3]) for r in result.rows if r[0] == arch]
            assert powers == sorted(powers)

    def test_fig14_axes_present(self, runner):
        result = figures.fig14_sensitivity(runner, ["KMEANS"])
        axes = {row[0] for row in result.rows}
        assert axes == {
            "GPU size", "LLC slices/partition", "LLC capacity",
            "page size", "UBA address map", "LAB threshold",
        }

    def test_fig16_summary(self, runner):
        result = figures.fig16_mcm(runner, ["KMEANS"], modules=2)
        assert "monolithic_improvement_pct" in result.summary
        assert "mcm_improvement_pct" in result.summary

    def test_sec76_rows(self, runner):
        result = figures.sec76_alternatives(runner, ["KMEANS"])
        assert len(result.rows) == 1
        assert len(result.rows[0]) == 4


class TestRunnerErrorPaths:
    def test_kernel_timeout_raises(self, runner):
        """A too-small cycle budget surfaces as a clear error."""
        from repro.workloads.suite import get_benchmark

        key = RunKey("KMEANS")
        system = runner.build(key)
        workload = get_benchmark("KMEANS").instantiate(system.gpu)
        with pytest.raises(RuntimeError, match="did not finish"):
            system.run_workload(workload, max_cycles=64)

    def test_pae_uba_end_to_end(self, runner):
        from repro.config.topology import AddressMapKind
        key = RunKey("KMEANS", Architecture.MEM_SIDE_UBA,
                     address_map=AddressMapKind.PAE)
        result = runner.run(key)
        assert result.loads_completed > 0

    def test_large_pages_end_to_end(self, runner):
        key = RunKey("KMEANS", Architecture.NUBA, page_bytes=16384)
        result = runner.run(key)
        assert result.loads_completed > 0
