"""Fast-lane vs. plain-path equivalence (docs/PERFORMANCE.md, "Busy path").

The busy-path fast lane (``repro.sim.fastlane``) -- TLB MRU front
caches, warp-body interning, the request freelist and precomputed
address routing -- must be *result-neutral*: a default run (fast lane
on, quiescence engine) has to produce field-identical results, stats
snapshots and tracer event streams compared to ``Simulator(strict=True)``
with every fast-lane flag off, which is the unoptimised reference path.

Request ids come from a process-global counter that ends up in tracer
event args, so each measured run reseeds it (same reasoning as
tests/test_engine_quiescence.py).
"""

from __future__ import annotations

import itertools
from dataclasses import asdict

import pytest

import repro.sim.request as request_mod
from repro.config.presets import small_config
from repro.config.topology import (
    Architecture,
    PagePolicy,
    ReplicationPolicy,
)
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.obs import Tracer
from repro.sim import fastlane
from repro.workloads.suite import get_benchmark

CHANNELS = 2

#: One point per architecture the figure catalog exercises; the NUBA
#: rows cover both the plain partitioned path and the MDR machinery
#: (sampler, epochs, replica routing) the fast lane threads through.
CONFIGS = [
    pytest.param(
        RunKey("KMEANS", Architecture.MEM_SIDE_UBA,
               page_policy=PagePolicy.FIRST_TOUCH),
        id="mem-side-uba",
    ),
    pytest.param(
        RunKey("KMEANS", Architecture.SM_SIDE_UBA,
               page_policy=PagePolicy.FIRST_TOUCH),
        id="sm-side-uba",
    ),
    pytest.param(
        RunKey("KMEANS", Architecture.NUBA,
               replication=ReplicationPolicy.NONE),
        id="nuba-norep",
    ),
    pytest.param(
        RunKey("KMEANS", Architecture.NUBA,
               replication=ReplicationPolicy.MDR),
        id="nuba-mdr",
    ),
]


def _run(key: RunKey, strict: bool):
    """Build and run one system; returns (result, stats, events, cycle).

    The caller controls the fast-lane flags; construction happens here,
    inside whatever flag context is active, because several consumers
    snapshot a flag at construction time.
    """
    request_mod._req_ids = itertools.count()
    fastlane.reset()
    runner = ExperimentRunner(
        base_gpu=small_config(num_channels=CHANNELS), strict=strict,
    )
    system = runner.build(key)
    tracer = Tracer.attach(system)
    workload = get_benchmark(key.benchmark).instantiate(system.gpu)
    result = system.run_workload(workload, max_cycles=runner.max_cycles)
    events = [
        (e.name, e.cat, e.track, e.cycle, e.dur,
         tuple(sorted(e.args.items())))
        for e in tracer.events
    ]
    return (
        asdict(result),
        system.stats_snapshot().as_dict(),
        events,
        system.sim.cycle,
    )


@pytest.mark.parametrize("key", CONFIGS)
def test_fast_lane_is_bit_identical_to_plain_path(key: RunKey) -> None:
    """Default run == strict engine with every fast-lane flag off."""
    assert fastlane.FLAGS.snapshot() == {
        "tlb_mru": True, "intern_bodies": True,
        "request_pool": True, "route_table": True,
        "columnar_llc": True, "columnar_mem": True,
        "columnar_xbar": True,
    }
    fast = _run(key, strict=False)
    with fastlane.disabled():
        plain = _run(key, strict=True)
    f_result, f_stats, f_events, f_cycle = fast
    p_result, p_stats, p_events, p_cycle = plain
    assert f_cycle == p_cycle
    assert f_result == p_result
    assert f_stats == p_stats
    assert len(f_events) == len(p_events)
    assert f_events == p_events


def test_disabled_context_restores_flags_and_clears_caches() -> None:
    """``disabled()`` must leave no trace: flags restored, caches
    (request pool, interned bodies) emptied on both entry and exit."""
    before = fastlane.FLAGS.snapshot()
    # Populate the request pool so the exit-side clear is observable.
    request = request_mod.acquire(request_mod.AccessKind.LOAD, 0, 0)
    request_mod.release(request)
    assert request_mod._pool
    with fastlane.disabled():
        assert not any(fastlane.FLAGS.snapshot().values())
        assert not request_mod._pool  # cleared on entry
        # With the pool flag off, released requests are not retained.
        inner = request_mod.acquire(request_mod.AccessKind.LOAD, 1, 0)
        request_mod.release(inner)
        assert not request_mod._pool
    assert fastlane.FLAGS.snapshot() == before
    assert not request_mod._pool  # cleared on exit
