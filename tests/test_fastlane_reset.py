"""`fastlane.reset()` coverage: the reset registry actually restores a
cold start.

The lint framework's F002 rule enforces that every module-level
fast-lane memo registers a clearer; this suite proves the other half of
the contract -- that after toggling flags and running a point,
``reset()`` verifiably empties every registered cache (request pool,
interned warp bodies), the per-object caches (TLB MRU, address-map
route/bank memos) flush with their owners, and a re-run from the reset
state is bit-identical.

Request ids come from a process-global counter, so each measured run
reseeds it (same reasoning as tests/test_fastlane_equivalence.py).
"""

from __future__ import annotations

import itertools
from dataclasses import asdict

import pytest

import repro.sim.request as request_mod
import repro.workloads.patterns as patterns
from repro.config.presets import small_config
from repro.config.topology import Architecture, ReplicationPolicy
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.sim import fastlane
from repro.workloads.suite import get_benchmark

KEY = RunKey("KMEANS", Architecture.NUBA,
             replication=ReplicationPolicy.MDR)

FLAG_NAMES = (
    "tlb_mru", "intern_bodies", "request_pool", "route_table",
    "columnar_llc", "columnar_mem", "columnar_xbar",
)


def _run_point():
    """Run the reference point; returns (system, result, stats)."""
    request_mod._req_ids = itertools.count()
    fastlane.reset()
    runner = ExperimentRunner(
        base_gpu=small_config(num_channels=2), strict=False,
    )
    system = runner.build(KEY)
    workload = get_benchmark(KEY.benchmark).instantiate(system.gpu)
    result = system.run_workload(workload, max_cycles=runner.max_cycles)
    return system, asdict(result), system.stats_snapshot().as_dict()


@pytest.fixture
def restored_flags():
    saved = fastlane.FLAGS.snapshot()
    yield
    fastlane.FLAGS.restore(saved)
    fastlane.reset()


class TestResetEmptiesCaches:
    def test_registry_covers_every_flag(self):
        assert set(FLAG_NAMES) == set(fastlane.FLAGS.snapshot())

    def test_run_populates_then_reset_empties(self, restored_flags):
        fastlane.FLAGS.set_all(True)
        request_mod._req_ids = itertools.count()
        fastlane.reset()
        runner = ExperimentRunner(
            base_gpu=small_config(num_channels=2), strict=False,
        )
        system = runner.build(KEY)
        # The TLBs (and their MRU front caches) flush at kernel
        # boundaries, so MRU population must be sampled mid-run.
        mru_seen = []
        system.sim.every(200, lambda cycle: mru_seen.append(True) if any(
            sm.mmu.l1._mru_key is not None for sm in system.sms) else None)
        workload = get_benchmark(KEY.benchmark).instantiate(system.gpu)
        system.run_workload(workload, max_cycles=runner.max_cycles)

        # The run populated the process-wide registered caches...
        assert request_mod._pool, "request freelist never populated"
        assert patterns._mem_interned or patterns._compute_interned, \
            "warp-body intern table never populated"
        # ...and the per-object ones.
        assert mru_seen, "no TLB MRU entry populated during the run"
        assert (system.address_map._route_cache
                or system.address_map._bank_cache), \
            "no route/bank memo populated"

        # Toggle every flag off and reset: every registered cache must
        # be verifiably empty.
        fastlane.FLAGS.set_all(False)
        fastlane.reset()
        assert not request_mod._pool
        assert not patterns._mem_interned
        assert not patterns._compute_interned

        # Per-object caches die with their owners (that is why they are
        # not in the registry); their flush hooks must empty them too.
        for sm in system.sms:
            sm.mmu.l1.flush()
            assert sm.mmu.l1._mru_key is None
            assert sm.mmu.l1._mru_frame == -1
        system.address_map.flush_routes()
        assert not system.address_map._route_cache
        assert not system.address_map._bank_cache

    def test_columnar_arrays_populated_then_reset_empties(
            self, restored_flags):
        """The columnar live-container registry holds real in-flight
        state mid-run, and ``reset()`` verifiably empties it."""
        from repro.sim import columnar

        fastlane.FLAGS.set_all(True)
        request_mod._req_ids = itertools.count()
        fastlane.reset()
        assert not columnar.live_containers()
        runner = ExperimentRunner(
            base_gpu=small_config(num_channels=2), strict=False,
        )
        system = runner.build(KEY)
        containers = columnar.live_containers()
        assert containers, "building a system registered no columnar state"
        # Queues drain by the end of the run, so occupancy must be
        # sampled mid-run (same reasoning as the TLB MRU above).
        populated = []
        system.sim.every(100, lambda cycle: populated.append(True) if any(
            len(c) for c in columnar.live_containers()) else None)
        workload = get_benchmark(KEY.benchmark).instantiate(system.gpu)
        system.run_workload(workload, max_cycles=runner.max_cycles)
        assert populated, "columnar arrays never held in-flight requests"

        fastlane.reset()
        # Every registered container was cleared and the (weak)
        # registry emptied -- disabled() can never observe stale
        # columnar state through a leaked reference.
        for container in containers:
            assert len(container) == 0
        assert not columnar.live_containers()

    def test_reset_is_idempotent(self, restored_flags):
        fastlane.reset()
        fastlane.reset()
        assert not request_mod._pool
        assert not patterns._mem_interned


class TestRerunAfterResetBitIdentical:
    def test_back_to_back_runs_identical(self, restored_flags):
        fastlane.FLAGS.set_all(True)
        _, first_result, first_stats = _run_point()
        _, second_result, second_stats = _run_point()
        assert first_result == second_result
        assert first_stats == second_stats

    @pytest.mark.parametrize("flag", FLAG_NAMES)
    def test_toggling_each_flag_is_result_neutral(self, flag,
                                                  restored_flags):
        """Flip one flag off (reset in between): bit-identical result --
        stale cache state leaking across the toggle would show up
        here."""
        fastlane.FLAGS.set_all(True)
        _, base_result, base_stats = _run_point()
        setattr(fastlane.FLAGS, flag, False)
        _, toggled_result, toggled_stats = _run_point()
        assert toggled_result == base_result, flag
        assert toggled_stats == base_stats, flag
