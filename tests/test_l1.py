"""L1 data cache tests (write-through, write-no-allocate)."""

import pytest

from repro.cache.l1 import L1Cache, L1Outcome
from repro.config.gpu import CacheConfig
from repro.sim.request import AccessKind, MemoryRequest


def _l1(sets=4, ways=2, mshr=4):
    return L1Cache(0, CacheConfig(sets=sets, ways=ways, mshr_entries=mshr))


def _load(line):
    return MemoryRequest(AccessKind.LOAD, line, sm_id=0)


def _store(line):
    return MemoryRequest(AccessKind.STORE, line, sm_id=0)


class TestL1Loads:
    def test_cold_miss_is_new(self):
        l1 = _l1()
        assert l1.access_load(_load(1)) is L1Outcome.MISS_NEW

    def test_second_miss_merges(self):
        l1 = _l1()
        l1.access_load(_load(1))
        assert l1.access_load(_load(1)) is L1Outcome.MISS_MERGED

    def test_fill_then_hit(self):
        l1 = _l1()
        l1.access_load(_load(1))
        waiters = l1.fill(1)
        assert len(waiters) == 1
        request = _load(1)
        assert l1.access_load(request) is L1Outcome.HIT
        assert request.hit_level == "l1"

    def test_mshr_full_stalls(self):
        l1 = _l1(mshr=2)
        l1.access_load(_load(1))
        l1.access_load(_load(2))
        assert l1.access_load(_load(3)) is L1Outcome.STALL

    def test_fill_releases_all_merged_waiters(self):
        l1 = _l1()
        a, b, c = _load(5), _load(5), _load(5)
        for request in (a, b, c):
            l1.access_load(request)
        assert l1.fill(5) == [a, b, c]


class TestL1Stores:
    def test_store_does_not_allocate(self):
        l1 = _l1()
        l1.access_store(_store(1))
        assert l1.access_load(_load(1)) is L1Outcome.MISS_NEW

    def test_store_keeps_present_line_valid(self):
        l1 = _l1()
        l1.access_load(_load(1))
        l1.fill(1)
        l1.access_store(_store(1))
        assert l1.access_load(_load(1)) is L1Outcome.HIT

    def test_store_counted(self):
        l1 = _l1()
        l1.access_store(_store(1))
        assert l1.stores == 1


class TestL1Coherence:
    def test_flush_invalidates(self):
        l1 = _l1()
        l1.access_load(_load(1))
        l1.fill(1)
        l1.flush()
        assert l1.access_load(_load(1)) is L1Outcome.MISS_NEW
        assert l1.flushes == 1

    def test_hit_rate(self):
        l1 = _l1()
        l1.access_load(_load(1))
        l1.fill(1)
        l1.access_load(_load(1))
        assert l1.load_hit_rate == pytest.approx(0.5)
