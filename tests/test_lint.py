"""Tests for `repro lint` (src/repro/lint): the five checkers on fixture
snippets, the suppression/baseline machinery, and the acceptance bar --
the real tree lints clean, and deleting any single ``wake()`` call or
``enabled`` guard makes it fail."""

import json
import re
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import Baseline, lint_paths, lint_sources, load_baseline
from repro.lint.determinism import DeterminismChecker
from repro.lint.fastlane_rules import FastlaneChecker
from repro.lint.hotclass import HotClassChecker
from repro.lint.runner import repo_root
from repro.lint.tracer_guard import TracerGuardChecker
from repro.lint.wake import WakeSiteChecker

REPO = repo_root()
SRC = REPO / "src" / "repro"


def _lint(path, source, checkers):
    return lint_sources({path: textwrap.dedent(source)}, checkers=checkers)


def _rules(result):
    return [f.rule for f in result.new]


# ---------------------------------------------------------------------------
# Wake-site checker (W001/W002) fixtures
# ---------------------------------------------------------------------------

WAKE_OK = """
    from repro.sim.engine import Component
    from repro.sim.queues import BoundedQueue

    class Thing(Component):
        def __init__(self):
            super().__init__("t")
            self.inbox = BoundedQueue(4, name="in")

        def deliver(self, item):
            if not self._awake:
                self.wake()
            return self.inbox.push(item)
"""


class TestWakeChecker:
    def test_guarded_push_is_clean(self):
        result = _lint("src/repro/sim/fx.py", WAKE_OK, [WakeSiteChecker()])
        assert _rules(result) == []

    def test_push_without_wake_is_w001(self):
        source = WAKE_OK.replace(
            "if not self._awake:\n                self.wake()\n"
            "            ", "")
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        assert "W001" in _rules(result)

    def test_guard_without_wake_call_is_w002(self):
        source = WAKE_OK.replace("self.wake()", "pass")
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        assert "W002" in _rules(result)

    def test_inlined_alias_push_is_seen(self):
        source = """
            from repro.sim.engine import Component
            from repro.sim.queues import BoundedQueue

            class Thing(Component):
                def __init__(self):
                    super().__init__("t")
                    self.inbox = BoundedQueue(4, name="in")

                def deliver(self, item):
                    queue = self.inbox
                    queue._items.append(item)
        """
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        assert "W001" in _rules(result)

    def test_container_of_queues_is_seen(self):
        source = """
            from repro.sim.engine import Component
            from repro.sim.queues import BandwidthLink

            class Links(Component):
                def __init__(self, n):
                    super().__init__("l")
                    self.links = [BandwidthLink(8) for _ in range(n)]

                def send(self, i, item):
                    self.links[i].push(item, 32)
        """
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        assert "W001" in _rules(result)

    def test_contract_and_private_methods_exempt(self):
        source = """
            from collections import deque
            from repro.sim.engine import Component

            class Thing(Component):
                def __init__(self):
                    super().__init__("t")
                    self._queue = deque()

                def tick(self, now):
                    self._queue.append(now)

                def _refill(self, item):
                    self._queue.append(item)
        """
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        assert _rules(result) == []

    def test_non_component_class_exempt(self):
        source = """
            from repro.sim.queues import BoundedQueue

            class Plain:
                def __init__(self):
                    self.inbox = BoundedQueue(4, name="in")

                def deliver(self, item):
                    return self.inbox.push(item)
        """
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        assert _rules(result) == []


#: A timed-wakeup component: tick() can return an int deadline, so its
#: ingress must have a wake reachable from every push site (W003).
TIMED_OK = """
    from repro.sim.engine import Component
    from repro.sim.queues import BoundedQueue

    class Timed(Component):
        def __init__(self):
            super().__init__("t")
            self.inbox = BoundedQueue(4, name="in")
            self._busy_until = 0

        def deliver(self, item):
            if not self._awake:
                self.wake()
            return self.inbox.push(item)

        def tick(self, now):
            if self.inbox:
                return False
            deadline = self._busy_until
            return deadline if deadline > now + 1 else False
"""


class TestTimedWakeChecker:
    def test_guarded_push_in_timed_component_is_clean(self):
        result = _lint("src/repro/sim/fx.py", TIMED_OK,
                       [WakeSiteChecker()])
        assert _rules(result) == []

    def test_post_push_wake_before_any_return_is_clean(self):
        # The inlined-hot-path idiom (crossbar.inject): push first,
        # wake unconditionally before the method can return.
        source = TIMED_OK.replace(
            """def deliver(self, item):
            if not self._awake:
                self.wake()
            return self.inbox.push(item)""",
            """def deliver(self, item):
            self.inbox._items.append(item)
            if not self._awake:
                self.wake()
            return True""")
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        assert _rules(result) == []

    def test_wake_behind_return_is_w003(self):
        # A wake exists (so W001 stays quiet) but an early return sits
        # between the push and the wake: the full-queue path delivers
        # without waking a timed sleeper.
        source = TIMED_OK.replace(
            """def deliver(self, item):
            if not self._awake:
                self.wake()
            return self.inbox.push(item)""",
            """def deliver(self, item):
            ok = self.inbox.push(item)
            if not ok:
                return False
            self.wake()
            return True""")
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        rules = _rules(result)
        assert "W003" in rules
        assert "W001" not in rules

    def test_missing_wake_in_timed_component_is_both_rules(self):
        source = TIMED_OK.replace(
            "if not self._awake:\n                self.wake()\n"
            "            ", "")
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        rules = _rules(result)
        assert "W001" in rules and "W003" in rules

    def test_untimed_component_is_exempt_from_w003(self):
        # Same wake-behind-return shape, but tick() only ever returns
        # a boolean verdict: W003 must not fire (W001's
        # presence-based approximation accepts the method).
        source = TIMED_OK.replace(
            """def deliver(self, item):
            if not self._awake:
                self.wake()
            return self.inbox.push(item)""",
            """def deliver(self, item):
            ok = self.inbox.push(item)
            if not ok:
                return False
            self.wake()
            return True""").replace(
            """def tick(self, now):
            if self.inbox:
                return False
            deadline = self._busy_until
            return deadline if deadline > now + 1 else False""",
            """def tick(self, now):
            return not self.inbox""")
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        assert "W003" not in _rules(result)

    def test_columnar_tick_shadow_is_scanned(self):
        # `self.tick = self._tick_columnar` in __init__ makes the
        # shadow method part of the timed-deadline scan.
        source = """
            from repro.sim.engine import Component
            from repro.sim.queues import BoundedQueue

            class Timed(Component):
                def __init__(self):
                    super().__init__("t")
                    self.inbox = BoundedQueue(4, name="in")
                    self._busy_until = 0
                    self.tick = self._tick_columnar

                def deliver(self, item):
                    ok = self.inbox.push(item)
                    if not ok:
                        return False
                    self.wake()
                    return True

                def _tick_columnar(self, now):
                    deadline = self._busy_until
                    return deadline if deadline > now + 1 else False
        """
        result = _lint("src/repro/sim/fx.py", source, [WakeSiteChecker()])
        assert "W003" in _rules(result)


# ---------------------------------------------------------------------------
# Fastlane discipline (F001/F002) fixtures
# ---------------------------------------------------------------------------

class TestFastlaneChecker:
    def test_fast_path_without_slow_path_is_f001(self):
        source = """
            from repro.sim import fastlane

            def lookup(key):
                if fastlane.FLAGS.route_table:
                    return key * 2
        """
        result = _lint("src/repro/vm/fx.py", source, [FastlaneChecker()])
        assert "F001" in _rules(result)

    def test_fall_through_slow_path_is_clean(self):
        source = """
            from repro.sim import fastlane

            def lookup(key):
                if fastlane.FLAGS.route_table:
                    return key * 2
                return key + key
        """
        result = _lint("src/repro/vm/fx.py", source, [FastlaneChecker()])
        assert _rules(result) == []

    def test_populate_only_branch_is_clean(self):
        source = """
            from repro.sim import fastlane

            _log = []

            def note(key):
                if fastlane.FLAGS.route_table:
                    _log.append(key)
        """
        result = _lint("src/repro/vm/fx.py", source,
                       [FastlaneChecker()])
        # F001 must not fire (no return in the branch); the memo itself
        # is unregistered, which is F002's job.
        assert "F001" not in _rules(result)
        assert "F002" in _rules(result)

    def test_registered_memo_is_clean(self):
        source = """
            from repro.sim import fastlane

            _memo = {}

            def lookup(key):
                if fastlane.FLAGS.route_table:
                    _memo[key] = key
                return key

            @fastlane.register_cache
            def _clear_memo():
                _memo.clear()
        """
        result = _lint("src/repro/vm/fx.py", source, [FastlaneChecker()])
        assert _rules(result) == []

    def test_unregistered_columnar_memo_is_f002(self):
        """A columnar-style live-container registry (module-level list
        populated under a ``columnar_*`` flag) must register a clearer
        -- the shape of ``repro.sim.columnar._live`` minus its
        ``@fastlane.register_cache`` hook."""
        source = """
            from repro.sim import fastlane

            _live = []

            def track(container):
                if fastlane.FLAGS.columnar_llc:
                    _live.append(container)
                return container
        """
        result = _lint("src/repro/sim/fx.py", source, [FastlaneChecker()])
        assert "F002" in _rules(result)

    def test_registered_columnar_memo_is_clean(self):
        source = """
            from repro.sim import fastlane

            _live = []

            def track(container):
                if fastlane.FLAGS.columnar_llc:
                    _live.append(container)
                return container

            @fastlane.register_cache
            def _clear_live():
                _live.clear()
        """
        result = _lint("src/repro/sim/fx.py", source, [FastlaneChecker()])
        assert _rules(result) == []

    def test_read_only_module_dict_exempt(self):
        source = """
            from repro.sim import fastlane

            _SIZES = {"req": 32, "reply": 128}

            def size(kind):
                if fastlane.FLAGS.request_pool:
                    return _SIZES[kind]
                return _SIZES[kind]
        """
        result = _lint("src/repro/sim/fx.py", source, [FastlaneChecker()])
        assert _rules(result) == []


# ---------------------------------------------------------------------------
# Tracer guard (T001) fixtures
# ---------------------------------------------------------------------------

class TestTracerGuardChecker:
    def test_unguarded_emit_is_t001(self):
        source = """
            class Hop:
                def transfer(self, now):
                    self.tracer.emit_hop(now, "a", "b")
        """
        result = _lint("src/repro/noc/fx.py", source,
                       [TracerGuardChecker()])
        assert "T001" in _rules(result)

    def test_direct_guard_is_clean(self):
        source = """
            class Hop:
                def transfer(self, now):
                    if self.tracer.enabled:
                        self.tracer.emit_hop(now, "a", "b")
        """
        result = _lint("src/repro/noc/fx.py", source,
                       [TracerGuardChecker()])
        assert _rules(result) == []

    def test_hoisted_alias_guard_is_clean(self):
        source = """
            class Hop:
                def transfer(self, now):
                    tracer = self.tracer
                    trace = tracer.enabled
                    for i in range(4):
                        if trace:
                            tracer.emit_hop(now, i, i + 1)
        """
        result = _lint("src/repro/noc/fx.py", source,
                       [TracerGuardChecker()])
        assert _rules(result) == []

    def test_compound_guard_is_clean(self):
        source = """
            class Hop:
                def send(self, now, accepted):
                    if accepted and self.tracer.enabled:
                        self.tracer.emit_hop(now, "a", "b")
        """
        result = _lint("src/repro/noc/fx.py", source,
                       [TracerGuardChecker()])
        assert _rules(result) == []

    def test_early_return_guard_is_clean(self):
        source = """
            class Hop:
                def transfer(self, now):
                    if not self.tracer.enabled:
                        return
                    self.tracer.emit_hop(now, "a", "b")
        """
        result = _lint("src/repro/noc/fx.py", source,
                       [TracerGuardChecker()])
        assert _rules(result) == []

    def test_obs_package_is_exempt(self):
        source = """
            class Tracer:
                def flush(self, now):
                    self.tracer.emit_hop(now, "a", "b")
        """
        result = _lint("src/repro/obs/fx.py", source,
                       [TracerGuardChecker()])
        assert _rules(result) == []


# ---------------------------------------------------------------------------
# Determinism (D001-D004) fixtures
# ---------------------------------------------------------------------------

class TestDeterminismChecker:
    def _lint(self, source, path="src/repro/mem/fx.py"):
        return _lint(path, source, [DeterminismChecker()])

    def test_wall_clock_is_d001(self):
        result = self._lint("""
            import time

            def stamp():
                return time.time()
        """)
        assert _rules(result) == ["D001"]

    def test_global_random_is_d002(self):
        result = self._lint("""
            import random

            def jitter():
                return random.random()
        """)
        assert _rules(result) == ["D002"]

    def test_seeded_rng_instance_is_clean(self):
        result = self._lint("""
            import random

            def make_rng(seed):
                return random.Random(seed)
        """)
        assert _rules(result) == []

    def test_id_sort_key_is_d003(self):
        result = self._lint("""
            def order(objs):
                return sorted(objs, key=lambda o: id(o))
        """)
        assert _rules(result) == ["D003"]

    def test_id_equality_is_clean(self):
        result = self._lint("""
            def same(a, b):
                return id(a) == id(b)
        """)
        assert _rules(result) == []

    def test_set_iteration_is_d004(self):
        result = self._lint("""
            def drain(items):
                pending = set(items)
                for item in pending:
                    yield item
        """)
        assert _rules(result) == ["D004"]

    def test_sorted_set_iteration_is_clean(self):
        result = self._lint("""
            def drain(items):
                pending = set(items)
                for item in sorted(pending):
                    yield item
        """)
        assert _rules(result) == []

    def test_comprehension_feeding_sorted_is_clean(self):
        # the sanctioned fix pattern from sm/coalescer.py
        result = self._lint("""
            def lines(addrs):
                unique = {a // 128 for a in addrs}
                return sorted((line // 32, line % 32) for line in unique)
        """)
        assert _rules(result) == []

    def test_dict_iteration_is_clean(self):
        result = self._lint("""
            def drain(table):
                for key in table:
                    yield key
        """)
        assert _rules(result) == []

    def test_out_of_scope_package_is_exempt(self):
        result = self._lint("""
            import time

            def stamp():
                return time.time()
        """, path="src/repro/service/fx.py")
        assert _rules(result) == []


# ---------------------------------------------------------------------------
# Hot-class checker (H001-H003) fixtures
# ---------------------------------------------------------------------------

class TestHotClassChecker:
    REGISTRY = ("repro.sim.fx:Hot",)

    def _lint(self, source):
        return _lint("src/repro/sim/fx.py", source,
                     [HotClassChecker(registry=self.REGISTRY)])

    def test_slotted_class_is_clean(self):
        result = self._lint("""
            class Hot:
                __slots__ = ("a", "b")

                def __init__(self):
                    self.a = 0
                    self.b = 0

                def bump(self):
                    self.a += 1
        """)
        assert _rules(result) == []

    def test_missing_slots_is_h001(self):
        result = self._lint("""
            class Hot:
                def __init__(self):
                    self.a = 0
        """)
        assert _rules(result) == ["H001"]

    def test_dataclass_is_exempt_from_h001(self):
        result = self._lint("""
            from dataclasses import dataclass

            @dataclass
            class Hot:
                a: int = 0
        """)
        assert _rules(result) == []

    def test_attr_outside_init_is_h002(self):
        result = self._lint("""
            class Hot:
                __slots__ = ("a", "b")

                def __init__(self):
                    self.a = 0

                def lazy(self):
                    self.b = 1
                    self.c = 2
        """)
        # self.b is in __slots__ (declared, late-initialised): allowed.
        # self.c is a new attribute: flagged.
        findings = [f for f in result.new if f.rule == "H002"]
        assert len(findings) == 1
        assert "self.c" in findings[0].message

    def test_missing_class_is_h003(self):
        result = self._lint("""
            class Cold:
                __slots__ = ()
        """)
        assert _rules(result) == ["H003"]

    def test_real_registry_entries_all_resolve(self):
        import importlib

        from repro.sim.fastlane import HOT_CLASSES

        for entry in HOT_CLASSES:
            mod_name, _, cls_name = entry.partition(":")
            module = importlib.import_module(mod_name)
            assert hasattr(module, cls_name), entry


# ---------------------------------------------------------------------------
# Suppressions and baseline
# ---------------------------------------------------------------------------

class TestSuppressions:
    def test_inline_disable_comment(self):
        source = """
            import time

            def stamp():
                return time.time()  # lint: disable=D001
        """
        result = _lint("src/repro/mem/fx.py", source,
                       [DeterminismChecker()])
        assert _rules(result) == []
        assert [f.rule for f in result.suppressed] == ["D001"]

    def test_inline_disable_wrong_rule_does_not_suppress(self):
        source = """
            import time

            def stamp():
                return time.time()  # lint: disable=D004
        """
        result = _lint("src/repro/mem/fx.py", source,
                       [DeterminismChecker()])
        assert _rules(result) == ["D001"]

    def test_baseline_match_moves_finding(self):
        source = """
            import time

            def stamp():
                return time.time()
        """
        probe = lint_sources({"src/repro/mem/fx.py":
                              textwrap.dedent(source)},
                             checkers=[DeterminismChecker()])
        entry = probe.new[0].as_dict()
        entry["note"] = "fixture: intentional for the test"
        del entry["line"], entry["hint"]
        baseline = Baseline([entry])
        result = lint_sources({"src/repro/mem/fx.py":
                               textwrap.dedent(source)},
                              checkers=[DeterminismChecker()],
                              baseline=baseline)
        assert result.new == []
        assert [f.rule for f in result.baselined] == ["D001"]

    def test_baseline_entry_without_note_is_b001(self):
        baseline = Baseline([{"rule": "D001", "path": "src/repro/mem/fx.py",
                              "scope": "stamp", "message": "whatever",
                              "note": ""}])
        result = lint_sources({}, checkers=[], baseline=baseline)
        assert sorted(_rules(result)) == ["B001", "B002"]

    def test_unused_baseline_entry_is_b002(self):
        baseline = Baseline([{"rule": "D001", "path": "gone.py",
                              "scope": "stamp", "message": "whatever",
                              "note": "justified once, code since fixed"}])
        result = lint_sources({}, checkers=[], baseline=baseline)
        assert _rules(result) == ["B002"]

    def test_syntax_error_is_e000(self):
        result = lint_sources({"src/repro/sim/bad.py": "def broken(:\n"})
        assert _rules(result) == ["E000"]


# ---------------------------------------------------------------------------
# Acceptance: the real tree
# ---------------------------------------------------------------------------

class TestRealTree:
    def test_repo_lints_clean(self):
        baseline = load_baseline(REPO / "lint-baseline.json")
        result = lint_paths(None, baseline=baseline)
        assert result.new == [], "\n".join(
            f.render() for f in result.new)
        assert result.files >= 90

    def test_deleting_any_wake_call_fails_lint(self):
        sites = 0
        for path in sorted(SRC.rglob("*.py")):
            parts = path.relative_to(SRC).parts
            if parts[0] in ("obs", "lint"):
                continue
            source = path.read_text(encoding="utf-8")
            rel = path.relative_to(REPO).as_posix()
            for match in re.finditer(r"self\.wake\(\)", source):
                mutated = (source[:match.start()] + "pass"
                           + source[match.end():])
                result = lint_sources({rel: mutated},
                                      checkers=[WakeSiteChecker()])
                assert any(f.rule in ("W001", "W002")
                           for f in result.new), (rel, match.start())
                sites += 1
        assert sites >= 13  # today: 13 hand-paired wake sites

    def test_deleting_wake_in_timed_components_raises_w003(self):
        """Every detectable push site in a timed-wakeup component must
        lose its wake coverage when the wake call is deleted."""
        timed_files = (
            "sm/core.py", "mem/controller.py", "noc/crossbar.py",
            "noc/p2p.py", "cache/llc_slice.py", "core/mcm.py",
        )
        w003_sites = 0
        for name in timed_files:
            path = SRC / name
            source = path.read_text(encoding="utf-8")
            rel = path.relative_to(REPO).as_posix()
            for match in re.finditer(r"self\.wake\(\)", source):
                mutated = (source[:match.start()] + "pass"
                           + source[match.end():])
                result = lint_sources({rel: mutated},
                                      checkers=[WakeSiteChecker()])
                assert any(f.rule in ("W001", "W002", "W003")
                           for f in result.new), (rel, match.start())
                if any(f.rule == "W003" for f in result.new):
                    w003_sites += 1
        # The per-site rule must actually bite on the real ingress
        # methods, not just the fixtures.
        assert w003_sites >= 6

    def test_deleting_any_enabled_guard_fails_lint(self):
        sites = 0
        for path in sorted(SRC.rglob("*.py")):
            parts = path.relative_to(SRC).parts
            if parts[0] in ("obs", "lint"):
                continue
            source = path.read_text(encoding="utf-8")
            rel = path.relative_to(REPO).as_posix()
            for match in re.finditer(r"(?:self\.)?tracer\.enabled",
                                     source):
                mutated = (source[:match.start()] + "True"
                           + source[match.end():])
                result = lint_sources({rel: mutated},
                                      checkers=[TracerGuardChecker()])
                assert any(f.rule == "T001" for f in result.new), (
                    rel, match.start())
                sites += 1
        assert sites >= 8

    def test_unregistering_any_cache_clearer_fails_lint(self):
        for rel in ("src/repro/workloads/patterns.py",
                    "src/repro/sim/request.py"):
            source = (REPO / rel).read_text(encoding="utf-8")
            assert "@fastlane.register_cache" in source, rel
            mutated = source.replace("@fastlane.register_cache", "")
            result = lint_sources({rel: mutated},
                                  checkers=[FastlaneChecker()])
            assert any(f.rule == "F002" for f in result.new), rel

    def test_removing_slots_fails_hot_class_check(self):
        rel = "src/repro/sim/queues.py"
        source = (REPO / rel).read_text(encoding="utf-8")
        mutated = source.replace("__slots__ = ", "_unslotted = ")
        result = lint_sources({rel: mutated},
                              checkers=[HotClassChecker()])
        assert any(f.rule == "H001" for f in result.new)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestLintCLI:
    def test_json_report(self, tmp_path, capsys):
        out = tmp_path / "findings.json"
        code = cli_main(["lint", "--json", "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["ok"] is True
        assert payload["counts"]["files"] >= 90
        assert payload["findings"] == []
        # stdout carries the same report
        stdout = capsys.readouterr().out
        assert json.loads(stdout)["ok"] is True

    def test_single_path_and_failure_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "mem" / "fx.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\n"
                       "def stamp():\n"
                       "    return time.time()\n", encoding="utf-8")
        code = cli_main(["lint", str(bad)])
        assert code == 1
        assert "D001" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("W001", "W002", "F001", "F002", "T001",
                     "D001", "D004", "H001", "H002", "B001"):
            assert rule in out
