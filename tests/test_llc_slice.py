"""LLC slice tests (Figure 5 microarchitecture)."""

import pytest

from repro.cache.llc_slice import LLCSlice
from repro.config.gpu import CacheConfig
from repro.sim.request import AccessKind, MemoryRequest


class Harness:
    """Wires a slice with recording sinks and a manual clock."""

    def __init__(self, latency=2, sets=4, ways=2, mshr=8):
        config = CacheConfig(
            sets=sets, ways=ways, mshr_entries=mshr, latency=latency,
            write_back=True, write_allocate=True,
        )
        self.slice = LLCSlice(0, config)
        self.replies = []
        self.misses = []
        self.replica_misses = []
        self.writebacks = []
        self.slice.reply_sink = lambda r: (self.replies.append(r), True)[1]
        self.slice.miss_sink = lambda r: (self.misses.append(r), True)[1]
        self.slice.replica_miss_sink = (
            lambda r: (self.replica_misses.append(r), True)[1]
        )
        self.slice.writeback_sink = (
            lambda line: (self.writebacks.append(line), True)[1]
        )
        self.cycle = 0

    def run(self, cycles):
        for _ in range(cycles):
            self.slice.tick(self.cycle)
            self.cycle += 1


def _load(line, home_slice=0, local=True):
    request = MemoryRequest(AccessKind.LOAD, line, sm_id=0)
    request.home_slice = home_slice
    request.is_local = local
    return request


def _store(line):
    return MemoryRequest(AccessKind.STORE, line, sm_id=0)


class TestLLCRequestFlow:
    def test_miss_goes_downstream_then_fill_replies(self):
        h = Harness()
        request = _load(1)
        assert h.slice.accept_local(request)
        h.run(5)
        assert h.misses == [request]
        assert h.replies == []
        h.slice.fill(request)
        h.run(5)
        assert h.replies == [request]
        assert request.hit_level == "mem"

    def test_hit_replies_after_latency(self):
        h = Harness(latency=3)
        first = _load(1)
        h.slice.accept_local(first)
        h.run(6)
        h.slice.fill(first)
        h.run(6)
        h.replies.clear()
        second = _load(1)
        h.slice.accept_local(second)
        h.run(2)  # arbiter cycle + part of the pipeline
        assert h.replies == []
        h.run(4)
        assert h.replies == [second]
        assert second.hit_level == "llc"

    def test_mshr_merge_no_duplicate_memory_traffic(self):
        h = Harness()
        a, b = _load(1), _load(1)
        h.slice.accept_local(a)
        h.slice.accept_remote(b)
        h.run(6)
        assert h.misses == [a]  # b merged
        h.slice.fill(a)
        h.run(6)
        assert set(h.replies) >= {a, b} or len(h.replies) == 2

    def test_one_array_access_per_cycle(self):
        h = Harness(latency=1)
        for line in range(6):
            h.slice.accept_local(_load(line))
        h.run(3)
        assert h.slice.port_cycles == 3

    def test_round_robin_between_lmr_and_rmr(self):
        h = Harness(latency=1)
        local = [_load(line) for line in range(0, 8, 2)]
        remote = [_load(line) for line in range(1, 9, 2)]
        for request in local:
            h.slice.accept_local(request)
        for request in remote:
            h.slice.accept_remote(request)
        h.run(5)  # 5 arbiter cycles; 4 have cleared the 1-cycle pipeline
        issued_local = sum(1 for r in local if r in h.misses)
        issued_remote = sum(1 for r in remote if r in h.misses)
        assert issued_local == 2
        assert issued_remote == 2


class TestLLCStores:
    def test_store_hit_marks_dirty_and_writebacks_on_eviction(self):
        h = Harness(sets=1, ways=1)
        store = _store(1)
        h.slice.accept_local(store)
        h.run(3)
        # Write-validate install; now evict it with another line.
        other = _store(1 + 1 * 1)  # different line, same (only) set
        other.line_addr = 2
        h.slice.accept_local(other)
        h.run(3)
        assert h.writebacks == [1]

    def test_store_completes_without_reply(self):
        h = Harness()
        store = _store(1)
        h.slice.accept_local(store)
        h.run(3)
        assert store.complete_cycle >= 0
        assert h.replies == []


class TestLLCReplication:
    def test_replica_miss_forwarded_to_home(self):
        h = Harness()
        request = _load(1, home_slice=5)
        request.is_replica_access = True
        h.slice.accept_local(request)
        h.run(5)
        assert h.replica_misses == [request]
        assert h.misses == []

    def test_replica_fill_installs_and_replies(self):
        h = Harness()
        request = _load(1, home_slice=5)
        request.is_replica_access = True
        h.slice.accept_local(request)
        h.run(5)
        h.slice.fill(request)  # data returned from the home partition
        h.run(5)
        assert h.replies == [request]
        assert h.slice.array.probe(1)  # replica installed
        assert h.slice.replica_fills == 1

    def test_fill_replica_without_waiters(self):
        h = Harness()
        assert h.slice.fill_replica(9)
        h.run(3)
        assert h.slice.array.probe(9)
        assert h.replies == []


class TestLLCMaintenance:
    def test_invalidate_op(self):
        h = Harness()
        h.slice.fill_replica(3)
        h.run(2)
        h.slice.invalidate(3)
        h.run(2)
        assert not h.slice.array.probe(3)
        assert h.slice.invalidations == 1

    def test_flush_returns_dirty_lines(self):
        h = Harness()
        h.slice.accept_local(_store(1))
        h.slice.accept_local(_store(2))
        h.run(5)
        dirty = h.slice.flush()
        assert sorted(dirty) == [1, 2]

    def test_pending_work_reflects_queues(self):
        h = Harness()
        h.slice.accept_local(_load(1))
        assert h.slice.pending_work > 0
        h.run(6)
        h.slice.fill(h.misses[0])
        h.run(6)
        assert h.slice.pending_work == 0

    def test_mshr_full_backpressures_queue(self):
        h = Harness(mshr=1)
        a, b = _load(1), _load(2)
        h.slice.accept_local(a)
        h.slice.accept_local(b)
        h.run(8)
        assert h.misses == [a]  # b stalled behind the full MSHR file
        h.slice.fill(a)
        h.run(8)
        assert b in h.misses
