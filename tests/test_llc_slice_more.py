"""Additional LLC-slice behaviours: priorities, back-pressure, ordering."""

from repro.cache.llc_slice import LLCSlice
from repro.config.gpu import CacheConfig
from repro.sim.request import AccessKind, MemoryRequest


class Harness:
    """A slice with recording sinks (accept-everything by default)."""

    def __init__(self, latency=1, sets=4, ways=2, mshr=8, queue_capacity=4):
        config = CacheConfig(
            sets=sets, ways=ways, mshr_entries=mshr, latency=latency,
            write_back=True, write_allocate=True,
        )
        self.slice = LLCSlice(0, config, queue_capacity=queue_capacity)
        self.replies = []
        self.misses = []
        self.slice.reply_sink = lambda r: (self.replies.append(r), True)[1]
        self.slice.miss_sink = lambda r: (self.misses.append(r), True)[1]
        self.slice.replica_miss_sink = lambda r: True
        self.slice.writeback_sink = lambda line: True
        self.cycle = 0

    def run(self, cycles):
        for _ in range(cycles):
            self.slice.tick(self.cycle)
            self.cycle += 1


def _load(line):
    request = MemoryRequest(AccessKind.LOAD, line, sm_id=0)
    request.home_slice = 0
    return request


class TestPortPriorities:
    def test_fills_take_priority_over_demand(self):
        """A pending fill is serviced before queued demand requests
        (fills free MSHRs and unblock the most work)."""
        h = Harness()
        first = _load(1)
        h.slice.accept_local(first)
        h.run(3)
        assert h.misses == [first]
        # Queue new demand AND the fill; the fill must win the port.
        h.slice.accept_local(_load(2))
        h.slice.fill(first)
        h.slice.tick(h.cycle)  # one port cycle
        assert h.slice.array.probe(1)      # fill processed
        assert len(h.slice.lmr) == 1       # demand still queued


class TestBackpressure:
    def test_lmr_capacity(self):
        h = Harness(queue_capacity=2)
        assert h.slice.accept_local(_load(1))
        assert h.slice.accept_local(_load(2))
        assert not h.slice.accept_local(_load(3))

    def test_rmr_capacity_independent(self):
        h = Harness(queue_capacity=2)
        h.slice.accept_local(_load(1))
        h.slice.accept_local(_load(2))
        assert h.slice.accept_remote(_load(3))  # separate queue

    def test_miss_sink_backpressure_retries(self):
        """A refused downstream miss is retried, not dropped."""
        h = Harness()
        accept = [False]
        real_misses = []

        def miss_sink(request):
            if accept[0]:
                real_misses.append(request)
                return True
            return False

        h.slice.miss_sink = miss_sink
        request = _load(1)
        h.slice.accept_local(request)
        h.run(10)
        assert real_misses == []
        assert h.slice.pending_work > 0
        accept[0] = True
        h.run(3)
        assert real_misses == [request]

    def test_reply_sink_backpressure_retries(self):
        h = Harness()
        accept = [False]
        delivered = []

        def reply_sink(request):
            if accept[0]:
                delivered.append(request)
                return True
            return False

        h.slice.reply_sink = reply_sink
        request = _load(1)
        h.slice.accept_local(request)
        h.run(4)
        h.slice.fill(request)
        h.run(6)
        assert delivered == []
        accept[0] = True
        h.run(3)
        assert delivered == [request]


class TestOrdering:
    def test_same_queue_fifo(self):
        """Demand requests from one queue reach memory in order."""
        h = Harness()
        requests = [_load(line) for line in range(4)]
        for request in requests:
            h.slice.accept_local(request)
        h.run(10)
        assert h.misses == requests

    def test_hit_under_miss(self):
        """A hit issued after an outstanding miss completes while the
        miss still waits for memory (non-blocking cache)."""
        h = Harness()
        h.slice.fill_replica(1)  # line 1 resident
        h.run(2)
        miss = _load(2)
        hit = _load(1)
        h.slice.accept_local(miss)
        h.slice.accept_local(hit)
        h.run(5)
        assert h.replies == [hit]
        assert h.misses == [miss]
