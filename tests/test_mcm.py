"""Multi-chip-module system tests (Section 7.6, Figure 15)."""

import pytest

from repro.config.presets import small_config
from repro.config.topology import (
    Architecture,
    MCMSpec,
    ReplicationPolicy,
    TopologySpec,
)
from repro.core.mcm import ModuleEgressLinks, build_mcm_system
from repro.workloads.suite import get_benchmark

GPU = small_config(num_channels=4, warps_per_sm=4)  # 8 SMs, 4 partitions
MCM = MCMSpec(modules=2, inter_module_bandwidth_gbps=90.0,
              inter_module_latency=16)


def _system(arch, rep=ReplicationPolicy.NONE, mcm=MCM):
    topo = TopologySpec(architecture=arch, replication=rep,
                        mdr_epoch=1000, mcm=mcm)
    return build_mcm_system(GPU, topo)


class TestBuilders:
    def test_mem_side_mcm_builds(self):
        system = _system(Architecture.MEM_SIDE_UBA)
        assert system.modules == 2
        assert len(system.egress.links) == 2

    def test_nuba_mcm_builds(self):
        system = _system(Architecture.NUBA)
        assert system.module_of_partition(0) == 0
        assert system.module_of_partition(3) == 1

    def test_requires_mcm_spec(self):
        topo = TopologySpec(architecture=Architecture.NUBA)
        with pytest.raises(ValueError):
            build_mcm_system(GPU, topo)

    def test_sm_side_mcm_not_modelled(self):
        topo = TopologySpec(architecture=Architecture.SM_SIDE_UBA, mcm=MCM)
        with pytest.raises(ValueError):
            build_mcm_system(GPU, topo)

    def test_module_maps(self):
        system = _system(Architecture.MEM_SIDE_UBA)
        assert system.module_of_sm(0) == 0
        assert system.module_of_sm(GPU.num_sms - 1) == 1
        assert system.module_of_slice(0) == 0
        assert system.module_of_slice(GPU.num_llc_slices - 1) == 1


class TestExecution:
    def test_uba_mcm_completes_and_uses_links(self):
        system = _system(Architecture.MEM_SIDE_UBA)
        workload = get_benchmark("AN").instantiate(GPU)
        result = system.run_workload(workload)
        assert result.loads_completed > 0
        # Shared weights force cross-module traffic.
        assert system.egress.bytes_transferred > 0

    def test_nuba_mcm_completes(self):
        system = _system(Architecture.NUBA, rep=ReplicationPolicy.MDR)
        workload = get_benchmark("AN").instantiate(GPU)
        result = system.run_workload(workload)
        assert result.loads_completed > 0

    def test_local_workload_crosses_no_modules(self):
        """A private-data workload placed by LAB stays module-local on
        both architectures -- the inter-module links see no traffic."""
        system = _system(Architecture.NUBA)
        workload = get_benchmark("DWT2D").instantiate(GPU)
        result = system.run_workload(workload)
        assert result.local_fraction > 0.5
        assert system.egress.bytes_transferred == 0

    def test_replication_cuts_inter_module_traffic(self):
        """MDR replication turns cross-module read-only traffic into
        module-local accesses (why NUBA matters more for MCM)."""
        norep = _system(Architecture.NUBA, rep=ReplicationPolicy.NONE)
        norep_result = norep.run_workload(
            get_benchmark("AN").instantiate(GPU)
        )
        mdr = _system(Architecture.NUBA, rep=ReplicationPolicy.MDR)
        mdr_result = mdr.run_workload(
            get_benchmark("AN").instantiate(GPU)
        )
        assert mdr.egress.bytes_transferred < (
            norep.egress.bytes_transferred
        )
        assert mdr_result.cycles <= norep_result.cycles

    def test_scarcer_links_hurt_uba_more(self):
        """Narrower inter-module links slow UBA down; NUBA with MDR,
        whose traffic is mostly local, is less sensitive (the Figure 16
        argument)."""
        narrow = MCMSpec(modules=2, inter_module_bandwidth_gbps=20.0,
                         inter_module_latency=16)

        def cycles(arch, rep, mcm):
            system = _system(arch, rep=rep, mcm=mcm)
            return system.run_workload(
                get_benchmark("AN").instantiate(GPU)
            ).cycles

        uba_slowdown = (
            cycles(Architecture.MEM_SIDE_UBA, ReplicationPolicy.NONE,
                   narrow)
            / cycles(Architecture.MEM_SIDE_UBA, ReplicationPolicy.NONE,
                     MCM)
        )
        nuba_slowdown = (
            cycles(Architecture.NUBA, ReplicationPolicy.MDR, narrow)
            / cycles(Architecture.NUBA, ReplicationPolicy.MDR, MCM)
        )
        assert uba_slowdown >= nuba_slowdown * 0.95


class TestEgressLinks:
    def test_send_delivers_through_final_sink(self):
        links = ModuleEgressLinks(2, MCM)
        delivered = []

        class Req:
            request_bytes = 8

        request = Req()
        assert links.send(0, request, 8,
                          lambda r: (delivered.append(r), True)[1])
        for cycle in range(40):
            links.tick(cycle)
        assert delivered == [request]

    def test_pending_counts(self):
        links = ModuleEgressLinks(2, MCM)
        links.send(1, object(), 8, lambda r: True)
        assert links.pending == 1
