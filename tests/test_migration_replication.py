"""Tests for the Section 7.6 alternatives: migration and page replication."""

import pytest

from repro.config.presets import small_config
from repro.config.topology import AddressMapKind, PagePolicy
from repro.driver.allocator import make_allocator
from repro.driver.driver import GpuDriver
from repro.driver.migration import PageMigrationManager
from repro.driver.page_replication import PageReplicationDriver
from repro.vm.address_map import make_address_map
from repro.vm.tlb import L2TLB, MMU
from repro.vm.walker import WalkerPool

GPU = small_config()
HOMES = [sm // GPU.sms_per_partition for sm in range(GPU.num_sms)]


def _driver():
    amap = make_address_map(GPU, AddressMapKind.FIXED_CHANNEL)
    allocator = make_allocator(PagePolicy.FIRST_TOUCH, GPU.num_channels,
                               HOMES)
    return GpuDriver(GPU, amap, allocator)


def _manager(driver, copies):
    return PageMigrationManager(
        driver,
        partition_channel=list(range(GPU.num_partitions)),
        migrate_lines=lambda vp, src, dst: copies.append((vp, src, dst)),
        interval=1000,
    )


class TestMigration:
    def test_hot_remote_page_migrates(self):
        driver = _driver()
        copies = []
        manager = _manager(driver, copies)
        driver.handle_fault(vpage=1, sm_id=0)  # home channel 0
        # Partition 3 (SMs 6,7) hammers the page.
        for _ in range(20):
            driver.note_access(1, sm_id=6)
        generation = driver.translation_generation
        manager.on_interval(1000)
        assert manager.migrations == 1
        assert driver.page_home[1] == 3
        assert copies == [(1, 0, 3)]
        assert driver.translation_generation == generation + 1

    def test_local_page_stays(self):
        driver = _driver()
        copies = []
        manager = _manager(driver, copies)
        driver.handle_fault(vpage=1, sm_id=0)
        for _ in range(20):
            driver.note_access(1, sm_id=0)  # local accesses only
        manager.on_interval(1000)
        assert manager.migrations == 0

    def test_contended_page_not_migrated(self):
        """No partition dominates: migrating would ping-pong, so don't."""
        driver = _driver()
        manager = _manager(driver, [])
        driver.handle_fault(vpage=1, sm_id=0)
        for sm in (0, 2, 4, 6):  # four partitions, 25% each
            for _ in range(5):
                driver.note_access(1, sm_id=sm)
        manager.on_interval(1000)
        assert manager.migrations == 0

    def test_cold_page_not_migrated(self):
        driver = _driver()
        manager = _manager(driver, [])
        driver.handle_fault(vpage=1, sm_id=0)
        driver.note_access(1, sm_id=6)  # below MIN_ACCESSES
        manager.on_interval(1000)
        assert manager.migrations == 0

    def test_counts_reset_each_interval(self):
        driver = _driver()
        manager = _manager(driver, [])
        driver.handle_fault(vpage=1, sm_id=0)
        for _ in range(20):
            driver.note_access(1, sm_id=6)
        manager.on_interval(1000)
        manager.on_interval(2000)  # no new accesses: nothing to do
        assert manager.migrations == 1

    def test_allocator_counts_follow_migration(self):
        driver = _driver()
        manager = _manager(driver, [])
        driver.handle_fault(vpage=1, sm_id=0)
        for _ in range(20):
            driver.note_access(1, sm_id=6)
        manager.on_interval(1000)
        counts = driver.allocator.pages_per_channel
        assert counts[0] == 0 and counts[3] == 1


def _mmu_over(driver, sm_id):
    """A real MMU (L1 TLB + MRU front cache, shared L2, walkers) whose
    translation provider is ``driver`` -- the wiring the system builder
    uses, scaled down to one SM."""
    tlb = GPU.tlb
    l2 = L2TLB(tlb.l2_entries, tlb.l2_ways, tlb.l2_latency)
    walkers = WalkerPool(tlb.page_walkers, tlb.walk_latency)
    return MMU(sm_id, tlb, l2, walkers, driver)


class TestMigrationInvalidation:
    """Migration must invalidate every fast-lane cache that could hold
    the old placement: TLB entries (incl. the MRU front cache) via the
    generation bump, while frame-pure route memos stay valid."""

    def _migrate_page(self, driver, manager):
        """Fault vpage 1 onto channel 0, hammer it from partition 3 and
        run one migration interval; returns (old_frame, new_frame)."""
        old_frame = driver.handle_fault(vpage=1, sm_id=0)
        for _ in range(20):
            driver.note_access(1, sm_id=6)
        manager.on_interval(1000)
        new_frame = driver.page_table.lookup(1)
        return old_frame, new_frame

    def test_translate_returns_new_frame_after_migration(self):
        driver = _driver()
        manager = _manager(driver, [])
        mmu = _mmu_over(driver, sm_id=6)
        old_frame = driver.handle_fault(vpage=1, sm_id=0)
        mmu.translate(1, now=0)
        _, frame = mmu.translate(1, now=100)
        assert frame == old_frame  # cached, MRU-warm
        for _ in range(20):
            driver.note_access(1, sm_id=6)
        manager.on_interval(1000)
        new_frame = driver.page_table.lookup(1)
        assert new_frame != old_frame
        _, frame = mmu.translate(1, now=5000)
        assert frame == new_frame  # shootdown flushed the stale entry
        _, frame = mmu.translate(1, now=6000)
        assert frame == new_frame  # and the refilled MRU path agrees

    def test_migrated_frame_routes_to_destination_channel(self):
        driver = _driver()
        manager = _manager(driver, [])
        old_frame, new_frame = self._migrate_page(driver, manager)
        amap = driver.address_map
        assert driver.page_home[1] == 3
        for line in range(GPU.lines_per_page):
            assert amap.route_of_line(amap.line_addr(new_frame, line))[0] == 3
            # Routes are frame-pure: the *old* frame still maps to its
            # channel -- migration changed vpage->frame, not the route.
            assert amap.route_of_line(amap.line_addr(old_frame, line))[0] == 0

    def test_flush_routes_drops_memos_but_not_answers(self):
        driver = _driver()
        manager = _manager(driver, [])
        old_frame, new_frame = self._migrate_page(driver, manager)
        amap = driver.address_map
        before = {
            frame: amap.route_of_line(amap.line_addr(frame, 0))
            for frame in (old_frame, new_frame)
        }
        assert amap._route_cache  # memo warmed by the lookups above
        amap.flush_routes()
        assert not amap._route_cache and not amap._bank_cache
        for frame, route in before.items():
            assert amap.route_of_line(amap.line_addr(frame, 0)) == route


class TestReplicationInvalidation:
    """Replica collapse (a store to a replicated page) must shoot down
    cached replica translations in the MMUs."""

    def test_collapse_redirects_cached_replica_translation(self):
        driver = _replication_driver()
        mmu = _mmu_over(driver, sm_id=6)
        primary = driver.handle_fault(vpage=1, sm_id=0)
        _, replica = mmu.translate(1, now=0)  # faults in a replica
        assert replica != primary
        _, frame = mmu.translate(1, now=100)
        assert frame == replica  # cached, MRU-warm
        driver.note_store(1)  # write collapses the replica set
        _, frame = mmu.translate(1, now=5000)
        assert frame == primary  # stale replica entry flushed
        _, frame = mmu.translate(1, now=6000)
        assert frame == primary  # MRU refilled with the primary


def _replication_driver(copies=None):
    amap = make_address_map(GPU, AddressMapKind.FIXED_CHANNEL)
    allocator = make_allocator(PagePolicy.FIRST_TOUCH, GPU.num_channels,
                               HOMES)
    return PageReplicationDriver(
        GPU, amap, allocator,
        copy_lines=(lambda vp, src, dst: copies.append((vp, src, dst)))
        if copies is not None else None,
    )


class TestPageReplication:
    def test_remote_touch_creates_replica(self):
        driver = _replication_driver()
        primary = driver.handle_fault(vpage=1, sm_id=0)
        # SM 6 (partition 3) touches the page: lookup misses, fault
        # replicates.
        assert driver.lookup_translation(1, sm_id=6) is None
        replica = driver.handle_fault(vpage=1, sm_id=6)
        assert replica != primary
        assert driver.replicas_created == 1
        assert driver.lookup_translation(1, sm_id=6) == replica
        assert driver.lookup_translation(1, sm_id=0) == primary

    def test_translation_keys_differ_per_partition(self):
        driver = _replication_driver()
        key0 = driver.translation_key(1, sm_id=0)
        key3 = driver.translation_key(1, sm_id=6)
        assert key0 != key3

    def test_write_collapses_replicas(self):
        driver = _replication_driver()
        driver.handle_fault(vpage=1, sm_id=0)
        driver.handle_fault(vpage=1, sm_id=6)
        generation = driver.translation_generation
        driver.note_store(1)
        assert driver.collapses == 1
        assert driver.translation_generation == generation + 1
        # All partitions now see the primary frame.
        primary = driver.lookup_translation(1, sm_id=0)
        assert driver.lookup_translation(1, sm_id=6) == primary

    def test_written_page_never_replicates(self):
        driver = _replication_driver()
        primary = driver.handle_fault(vpage=1, sm_id=0)
        driver.note_store(1)
        assert driver.lookup_translation(1, sm_id=6) == primary
        assert driver.replicas_created == 0

    def test_copy_cost_charged(self):
        copies = []
        driver = _replication_driver(copies)
        driver.handle_fault(vpage=1, sm_id=0)
        driver.handle_fault(vpage=1, sm_id=6)
        assert copies == [(1, 0, 3)]

    def test_headroom_limits_replicas(self):
        driver = _replication_driver()
        driver.memory_headroom_pages = 1
        driver.handle_fault(vpage=1, sm_id=0)
        driver.handle_fault(vpage=2, sm_id=0)
        driver.handle_fault(vpage=1, sm_id=6)  # uses the only slot
        primary2 = driver.lookup_translation(2, sm_id=0)
        assert driver.handle_fault(vpage=2, sm_id=6) == primary2
        assert driver.replicas_created == 1
