"""Tests for the Section 7.6 alternatives: migration and page replication."""

import pytest

from repro.config.presets import small_config
from repro.config.topology import AddressMapKind, PagePolicy
from repro.driver.allocator import make_allocator
from repro.driver.driver import GpuDriver
from repro.driver.migration import PageMigrationManager
from repro.driver.page_replication import PageReplicationDriver
from repro.vm.address_map import make_address_map

GPU = small_config()
HOMES = [sm // GPU.sms_per_partition for sm in range(GPU.num_sms)]


def _driver():
    amap = make_address_map(GPU, AddressMapKind.FIXED_CHANNEL)
    allocator = make_allocator(PagePolicy.FIRST_TOUCH, GPU.num_channels,
                               HOMES)
    return GpuDriver(GPU, amap, allocator)


def _manager(driver, copies):
    return PageMigrationManager(
        driver,
        partition_channel=list(range(GPU.num_partitions)),
        migrate_lines=lambda vp, src, dst: copies.append((vp, src, dst)),
        interval=1000,
    )


class TestMigration:
    def test_hot_remote_page_migrates(self):
        driver = _driver()
        copies = []
        manager = _manager(driver, copies)
        driver.handle_fault(vpage=1, sm_id=0)  # home channel 0
        # Partition 3 (SMs 6,7) hammers the page.
        for _ in range(20):
            driver.note_access(1, sm_id=6)
        generation = driver.translation_generation
        manager.on_interval(1000)
        assert manager.migrations == 1
        assert driver.page_home[1] == 3
        assert copies == [(1, 0, 3)]
        assert driver.translation_generation == generation + 1

    def test_local_page_stays(self):
        driver = _driver()
        copies = []
        manager = _manager(driver, copies)
        driver.handle_fault(vpage=1, sm_id=0)
        for _ in range(20):
            driver.note_access(1, sm_id=0)  # local accesses only
        manager.on_interval(1000)
        assert manager.migrations == 0

    def test_contended_page_not_migrated(self):
        """No partition dominates: migrating would ping-pong, so don't."""
        driver = _driver()
        manager = _manager(driver, [])
        driver.handle_fault(vpage=1, sm_id=0)
        for sm in (0, 2, 4, 6):  # four partitions, 25% each
            for _ in range(5):
                driver.note_access(1, sm_id=sm)
        manager.on_interval(1000)
        assert manager.migrations == 0

    def test_cold_page_not_migrated(self):
        driver = _driver()
        manager = _manager(driver, [])
        driver.handle_fault(vpage=1, sm_id=0)
        driver.note_access(1, sm_id=6)  # below MIN_ACCESSES
        manager.on_interval(1000)
        assert manager.migrations == 0

    def test_counts_reset_each_interval(self):
        driver = _driver()
        manager = _manager(driver, [])
        driver.handle_fault(vpage=1, sm_id=0)
        for _ in range(20):
            driver.note_access(1, sm_id=6)
        manager.on_interval(1000)
        manager.on_interval(2000)  # no new accesses: nothing to do
        assert manager.migrations == 1

    def test_allocator_counts_follow_migration(self):
        driver = _driver()
        manager = _manager(driver, [])
        driver.handle_fault(vpage=1, sm_id=0)
        for _ in range(20):
            driver.note_access(1, sm_id=6)
        manager.on_interval(1000)
        counts = driver.allocator.pages_per_channel
        assert counts[0] == 0 and counts[3] == 1


def _replication_driver(copies=None):
    amap = make_address_map(GPU, AddressMapKind.FIXED_CHANNEL)
    allocator = make_allocator(PagePolicy.FIRST_TOUCH, GPU.num_channels,
                               HOMES)
    return PageReplicationDriver(
        GPU, amap, allocator,
        copy_lines=(lambda vp, src, dst: copies.append((vp, src, dst)))
        if copies is not None else None,
    )


class TestPageReplication:
    def test_remote_touch_creates_replica(self):
        driver = _replication_driver()
        primary = driver.handle_fault(vpage=1, sm_id=0)
        # SM 6 (partition 3) touches the page: lookup misses, fault
        # replicates.
        assert driver.lookup_translation(1, sm_id=6) is None
        replica = driver.handle_fault(vpage=1, sm_id=6)
        assert replica != primary
        assert driver.replicas_created == 1
        assert driver.lookup_translation(1, sm_id=6) == replica
        assert driver.lookup_translation(1, sm_id=0) == primary

    def test_translation_keys_differ_per_partition(self):
        driver = _replication_driver()
        key0 = driver.translation_key(1, sm_id=0)
        key3 = driver.translation_key(1, sm_id=6)
        assert key0 != key3

    def test_write_collapses_replicas(self):
        driver = _replication_driver()
        driver.handle_fault(vpage=1, sm_id=0)
        driver.handle_fault(vpage=1, sm_id=6)
        generation = driver.translation_generation
        driver.note_store(1)
        assert driver.collapses == 1
        assert driver.translation_generation == generation + 1
        # All partitions now see the primary frame.
        primary = driver.lookup_translation(1, sm_id=0)
        assert driver.lookup_translation(1, sm_id=6) == primary

    def test_written_page_never_replicates(self):
        driver = _replication_driver()
        primary = driver.handle_fault(vpage=1, sm_id=0)
        driver.note_store(1)
        assert driver.lookup_translation(1, sm_id=6) == primary
        assert driver.replicas_created == 0

    def test_copy_cost_charged(self):
        copies = []
        driver = _replication_driver(copies)
        driver.handle_fault(vpage=1, sm_id=0)
        driver.handle_fault(vpage=1, sm_id=6)
        assert copies == [(1, 0, 3)]

    def test_headroom_limits_replicas(self):
        driver = _replication_driver()
        driver.memory_headroom_pages = 1
        driver.handle_fault(vpage=1, sm_id=0)
        driver.handle_fault(vpage=2, sm_id=0)
        driver.handle_fault(vpage=1, sm_id=6)  # uses the only slot
        primary2 = driver.lookup_translation(2, sm_id=0)
        assert driver.handle_fault(vpage=2, sm_id=6) == primary2
        assert driver.replicas_created == 1
