"""MSHR file tests."""

import pytest

from repro.cache.mshr import MSHRFile, MSHROutcome
from repro.sim.request import AccessKind, MemoryRequest


def _req(line):
    return MemoryRequest(AccessKind.LOAD, line, sm_id=0)


class TestMSHR:
    def test_first_miss_allocates(self):
        mshr = MSHRFile(4)
        assert mshr.allocate(_req(10)) is MSHROutcome.ALLOCATED
        assert 10 in mshr

    def test_same_line_merges(self):
        mshr = MSHRFile(4)
        mshr.allocate(_req(10))
        assert mshr.allocate(_req(10)) is MSHROutcome.MERGED
        assert len(mshr) == 1
        assert mshr.merges == 1

    def test_full_stalls(self):
        mshr = MSHRFile(2)
        mshr.allocate(_req(1))
        mshr.allocate(_req(2))
        assert mshr.allocate(_req(3)) is MSHROutcome.FULL
        assert mshr.stalls == 1

    def test_merge_allowed_when_full(self):
        """Merging needs no new entry, so it works on a full file."""
        mshr = MSHRFile(1)
        mshr.allocate(_req(1))
        assert mshr.allocate(_req(1)) is MSHROutcome.MERGED

    def test_release_returns_all_waiters(self):
        mshr = MSHRFile(4)
        first, second = _req(7), _req(7)
        mshr.allocate(first)
        mshr.allocate(second)
        waiters = mshr.release(7)
        assert waiters == [first, second]
        assert 7 not in mshr

    def test_release_frees_entry(self):
        mshr = MSHRFile(1)
        mshr.allocate(_req(1))
        mshr.release(1)
        assert mshr.allocate(_req(2)) is MSHROutcome.ALLOCATED

    def test_release_unknown_line_raises(self):
        with pytest.raises(KeyError):
            MSHRFile(1).release(99)

    def test_peak_occupancy(self):
        mshr = MSHRFile(8)
        for line in range(5):
            mshr.allocate(_req(line))
        for line in range(5):
            mshr.release(line)
        assert mshr.peak_occupancy == 5

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            MSHRFile(0)
