"""Observability layer tests: tracer, timelines, exporters, profiler.

The heavyweight fixtures run one small NUBA workload with the full
instrumentation attached; the assertions then cross-check the trace
against the system's own counters (conservation) and pin down the
exporter formats (Chrome ``trace_event`` schema, CSV round-trip).
The final class asserts the zero-cost-when-disabled contract: identical
results and (benchmark-marked) bounded wall-clock overhead.
"""

import dataclasses
import json
import time

import pytest

from repro.config.presets import small_config
from repro.config.topology import Architecture, ReplicationPolicy, TopologySpec
from repro.core.builders import build_system
from repro.obs.export import (
    TRACE_PID,
    chrome_trace_dict,
    load_timeline_csv,
    write_chrome_trace,
)
from repro.obs.profiler import TickProfiler, _TickProxy
from repro.obs.timeline import GLOBAL_FIELDS, TimelineCollector
from repro.obs.tracer import NULL_TRACER, TraceEvent, Tracer
from repro.sim.engine import Component, Simulator
from repro.workloads.suite import get_benchmark


def _nuba_system():
    gpu = small_config(num_channels=4, warps_per_sm=4)
    topo = TopologySpec(architecture=Architecture.NUBA,
                        replication=ReplicationPolicy.MDR, mdr_epoch=500)
    return gpu, build_system(gpu, topo)


@pytest.fixture(scope="module")
def traced():
    """A small NUBA run with tracer and timeline collector attached."""
    gpu, system = _nuba_system()
    tracer = Tracer.attach(system)
    timeline = TimelineCollector.attach(system, interval=500)
    result = system.run_workload(get_benchmark("AN").instantiate(gpu))
    return system, tracer, timeline, result


class TestTracer:
    def test_all_event_categories_emitted(self, traced):
        _, tracer, _, _ = traced
        counts = tracer.category_counts()
        assert {"noc", "llc", "dram", "driver", "mdr",
                "kernel", "sm"} <= set(counts)
        assert all(count > 0 for count in counts.values())

    def test_llc_events_name_hits_and_misses(self, traced):
        system, tracer, _, _ = traced
        events = tracer.by_category("llc")
        assert events
        assert {e.name for e in events} <= {"llc.hit", "llc.miss"}
        hits = sum(1 for e in events if e.name == "llc.hit")
        assert hits <= sum(s.hits for s in system.slices)

    def test_mdr_epochs_traced_one_to_one(self, traced):
        system, tracer, _, _ = traced
        events = tracer.by_category("mdr")
        assert len(events) == len(system.mdr.decisions)
        for event, decision in zip(events, system.mdr.decisions):
            assert event.args["replicate"] == decision.replicate
            assert event.args["bw_norep"] == decision.bw_norep

    def test_page_allocs_traced_one_to_one(self, traced):
        system, tracer, _, _ = traced
        events = tracer.by_category("driver")
        assert len(events) == system.driver.pages_allocated
        # NPB is carried with every allocation and stays in [0, 1].
        assert all(0.0 <= e.args["npb"] <= 1.0 for e in events)

    def test_kernel_span_covers_run(self, traced):
        _, tracer, _, result = traced
        spans = tracer.by_category("kernel")
        assert spans
        assert spans[-1].dur > 0
        assert spans[-1].cycle + spans[-1].dur <= result.cycles

    def test_dram_events_are_spans(self, traced):
        _, tracer, _, _ = traced
        events = tracer.by_category("dram")
        assert events
        assert all(e.dur > 0 for e in events)
        assert all(e.name in ("dram.read", "dram.write") for e in events)

    def test_cycles_within_run(self, traced):
        _, tracer, _, result = traced
        assert all(0 <= e.cycle <= result.cycles for e in tracer.events)

    def test_tracks_are_component_names(self, traced):
        system, tracer, _, _ = traced
        component_names = {c.name for c in system.sim.components}
        named = [t for t in tracer.tracks()
                 if t in component_names]
        assert named, "no track maps back to a simulated component"

    def test_max_events_ceiling_drops(self):
        tracer = Tracer(max_events=10)
        for i in range(25):
            tracer.emit("x", "test", "t", cycle=i)
        assert len(tracer) == 10
        assert tracer.dropped == 15

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit("x", "test", "t", cycle=0)
        tracer.emit_page_alloc(0, 0, 0, 1.0)
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_null_tracer_cannot_be_enabled(self):
        assert not NULL_TRACER.enabled
        with pytest.raises(ValueError):
            NULL_TRACER.enabled = True
        assert not NULL_TRACER.enabled


class TestTimelineCollector:
    def test_layout_is_rectangular(self, traced):
        _, _, timeline, _ = traced
        assert list(GLOBAL_FIELDS) == timeline.columns[:len(GLOBAL_FIELDS)]
        assert "p0.link_util" in timeline.columns
        assert all(len(row) == len(timeline.columns)
                   for row in timeline.rows)
        assert len(timeline) > 0

    def test_reply_deltas_sum_to_totals(self, traced):
        """Interval deltas must add up to the run's final counters."""
        _, _, timeline, result = traced
        sampled = sum(timeline.series("replies"))
        assert sampled <= result.loads_completed
        assert sampled >= result.loads_completed * 0.8

    def test_npb_gauge_in_range(self, traced):
        _, _, timeline, _ = traced
        assert all(0.0 <= v <= 1.0 for v in timeline.series("npb"))

    def test_link_util_in_range(self, traced):
        _, _, timeline, _ = traced
        for p in range(timeline.partitions):
            assert all(0.0 <= v <= 1.0
                       for v in timeline.series(f"p{p}.link_util"))

    def test_mdr_windows_detected(self, traced):
        """AN replicates under MDR, so windows must be found."""
        _, _, timeline, _ = traced
        windows = timeline.replication_windows()
        assert windows
        assert all(end >= start for start, end in windows)

    def test_unknown_column_raises(self, traced):
        _, _, timeline, _ = traced
        with pytest.raises(ValueError):
            timeline.series("no_such_column")

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TimelineCollector(object(), interval=0)


class TestCsvRoundTrip:
    def test_round_trip_is_exact(self, traced):
        _, _, timeline, _ = traced
        columns, rows = load_timeline_csv(timeline.to_csv())
        assert columns == timeline.columns
        assert rows == timeline.rows

    def test_write_csv(self, traced, tmp_path):
        _, _, timeline, _ = traced
        path = tmp_path / "timeline.csv"
        timeline.write_csv(str(path))
        columns, rows = load_timeline_csv(path.read_text())
        assert columns == timeline.columns
        assert len(rows) == len(timeline)

    def test_empty_csv_rejected(self):
        with pytest.raises(ValueError):
            load_timeline_csv("")

    def test_ragged_csv_rejected(self):
        with pytest.raises(ValueError):
            load_timeline_csv("a,b\n1,2,3\n")


class TestChromeTrace:
    def test_required_keys_on_every_event(self, traced):
        _, tracer, timeline, _ = traced
        trace = chrome_trace_dict(tracer, timeline)
        events = trace["traceEvents"]
        assert events
        for event in events:
            assert {"ph", "ts", "pid", "name"} <= set(event)
            assert event["ph"] in ("X", "i", "C", "M")
            assert event["pid"] == TRACE_PID

    def test_span_events_carry_duration(self, traced):
        _, tracer, timeline, _ = traced
        events = chrome_trace_dict(tracer, timeline)["traceEvents"]
        assert all(e["dur"] > 0 for e in events if e["ph"] == "X")
        assert any(e["ph"] == "X" for e in events)

    def test_tracks_labelled_via_metadata(self, traced):
        _, tracer, _, _ = traced
        events = chrome_trace_dict(tracer)["traceEvents"]
        labels = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert labels == set(tracer.tracks())

    def test_counter_events_from_timeline(self, traced):
        _, tracer, timeline, _ = traced
        events = chrome_trace_dict(tracer, timeline)["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert {"npb", "mdr_replicating"} <= {e["name"] for e in counters}

    def test_written_file_is_valid_json(self, traced, tmp_path):
        _, tracer, timeline, _ = traced
        path = tmp_path / "out.trace.json"
        count = write_chrome_trace(str(path), tracer, timeline)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count
        assert loaded["metadata"]["dropped_events"] == tracer.dropped


class TestTickProfiler:
    class _Busy(Component):
        """Test component with a non-trivial tick."""

        def tick(self, now):
            """Burn a little deterministic work."""
            sum(range(50))

    def test_profile_attributes_time(self):
        sim = Simulator()
        sim.add(self._Busy("busy0"))
        sim.add(self._Busy("busy1"))
        profiler = TickProfiler.attach(sim)
        sim.run(200)
        assert profiler.total_seconds > 0
        assert set(profiler.by_component()) == {"busy0", "busy1"}
        assert set(profiler.by_group()) == {"busy"}
        assert "tick profile" in profiler.report()

    def test_detach_restores_components(self):
        sim = Simulator()
        busy = sim.add(self._Busy("busy0"))
        profiler = TickProfiler.attach(sim)
        assert sim.components[0] is not busy
        profiler.detach()
        assert sim.components[0] is busy
        profiler.detach()  # idempotent
        assert sim.components[0] is busy


class TestTickProfilerActivityContract:
    """The proxy must forward the full activity contract
    (``wake``/``idle``/``on_sleep``/``on_skipped`` plus the
    ``_awake``/``_idle_since`` bookkeeping), otherwise a profiled run
    skips different ticks than an unprofiled one and diverges."""

    class _Sleeper(Component):
        """Sleeps whenever its inbox drains; accounts quiet cycles both
        ways (per-tick in strict mode, via on_skipped when slept)."""

        def __init__(self, name):
            super().__init__(name)
            self.inbox = []
            self.ticks = 0
            self.processed = 0
            self.quiet_cycles = 0
            self.sleeps = 0

        def deliver(self, item):
            if not self._awake:
                self.wake()
            self.inbox.append(item)

        def tick(self, now):
            self.ticks += 1
            if self.inbox:
                self.inbox.pop()
                self.processed += 1
                # the returned verdict must agree with idle(now): after
                # draining the last item every future tick is a no-op
                return not self.inbox
            self.quiet_cycles += 1
            return True

        def idle(self, now):
            return not self.inbox

        def on_sleep(self, now):
            self.sleeps += 1

        def on_skipped(self, cycles):
            self.quiet_cycles += cycles

    def test_proxy_forwards_full_activity_contract(self):
        comp = self._Sleeper("s")
        proxy = _TickProxy(comp)
        # wake() reaches the wrapped component
        comp._awake = False
        proxy.wake()
        assert comp._awake is True
        # idle() delegates
        assert proxy.idle(0) is True
        comp.inbox.append(object())
        assert proxy.idle(0) is False
        comp.inbox.clear()
        # on_sleep / on_skipped forward (and the proxy keeps its own
        # skip counter for the report)
        proxy.on_sleep(3)
        assert comp.sleeps == 1
        proxy.on_skipped(7)
        assert comp.quiet_cycles == 7
        assert proxy.skipped == 7
        # engine-side bookkeeping lands on the wrapped component
        proxy._awake = False
        assert comp._awake is False
        proxy._idle_since = 42
        assert comp._idle_since == 42 and proxy._idle_since == 42
        # tracer rebinding passes through
        sentinel = object()
        proxy.tracer = sentinel
        assert comp.tracer is sentinel and proxy.tracer is sentinel

    def _run(self, profiled):
        sim = Simulator()
        comp = sim.add(self._Sleeper("s"))
        profiler = TickProfiler.attach(sim) if profiled else None

        def feeder(cycle):
            # external events land on the real component (routing sinks
            # hold references to it, not to the proxy)
            if cycle in (100, 300):
                for _ in range(5):
                    comp.deliver(object())

        sim.every(50, feeder)
        sim.run(500)
        return sim, comp, profiler

    def test_profiled_run_skips_exactly_like_unprofiled(self):
        sim_p, comp_p, profiler = self._run(profiled=True)
        sim_u, comp_u, _ = self._run(profiled=False)
        assert comp_p.ticks == comp_u.ticks
        assert comp_p.processed == comp_u.processed == 10
        assert comp_p.quiet_cycles == comp_u.quiet_cycles
        assert comp_p.sleeps == comp_u.sleeps >= 2
        assert sim_p.skipped_ticks == sim_u.skipped_ticks > 0
        # the proxy was told about every elided tick
        proxy = sim_p.components[0]
        assert proxy.skipped == sim_p.skipped_ticks
        assert profiler.total_seconds > 0


class TestDisabledOverhead:
    def test_disabled_tracer_results_identical(self):
        """A disabled tracer must not change simulation results at all."""
        gpu, plain = _nuba_system()
        _, hooked = _nuba_system()
        tracer = Tracer.attach(hooked, enabled=False)

        workload = get_benchmark("AN").instantiate(gpu)
        result_plain = plain.run_workload(workload)
        result_hooked = hooked.run_workload(
            get_benchmark("AN").instantiate(gpu))

        assert len(tracer) == 0
        assert dataclasses.asdict(result_plain) == \
            dataclasses.asdict(result_hooked)
        assert repr(result_plain) == repr(result_hooked)

    @pytest.mark.benchmark
    def test_disabled_tracing_overhead_under_5_percent(self):
        """The docs/TRACING.md guarantee: with tracing disabled, a
        100k-cycle run costs < 5% extra wall-clock vs no tracer attached
        (interleaved best-of-N so host-clock drift hits both systems
        equally). Strict mode keeps every component ticking so the
        per-tick guard cost is what's measured (the quiescence engine
        would otherwise fast-forward the idle system and leave nothing
        to time)."""
        _, plain = _nuba_system()
        _, hooked = _nuba_system()
        plain.sim.strict = True
        hooked.sim.strict = True
        Tracer.attach(hooked, enabled=False)
        cycles, repeats = 100_000, 5

        def timed(system):
            start = time.perf_counter()
            system.sim.run(cycles)
            return time.perf_counter() - start

        base_times, disabled_times = [], []
        for _ in range(repeats):
            base_times.append(timed(plain))
            disabled_times.append(timed(hooked))
        base = min(base_times)
        disabled = min(disabled_times)
        assert disabled <= base * 1.05, (
            f"disabled tracing overhead {disabled / base - 1:.1%}"
        )


class TestRunObserver:
    @pytest.fixture()
    def observed(self, tmp_path):
        from repro.experiments.runner import ExperimentRunner, RunKey
        from repro.obs.observer import RunObserver

        observer = RunObserver(trace_dir=str(tmp_path),
                               timeline_dir=str(tmp_path), interval=500)
        runner = ExperimentRunner(
            base_gpu=small_config(num_channels=4, warps_per_sm=4),
            observer=observer,
        )
        key = RunKey(benchmark="AN", architecture=Architecture.NUBA,
                     replication=ReplicationPolicy.MDR)
        runner.run(key)
        return runner, observer, key

    def test_artifacts_written_per_simulated_point(self, observed):
        _, observer, _ = observed
        assert len(observer.artifacts) == 1
        (trace_path, timeline_path), = observer.artifacts.values()
        loaded = json.loads(open(trace_path).read())
        assert loaded["traceEvents"]
        columns, rows = load_timeline_csv(open(timeline_path).read())
        assert rows and "npb" in columns
        assert observer.summary()

    def test_cached_points_not_reobserved(self, observed):
        runner, observer, key = observed
        runner.run(key)  # in-memory cache hit
        assert runner.simulations_run == 1
        assert len(observer.artifacts) == 1


class TestTimelineChart:
    def test_chart_renders_obs_collector(self, traced):
        from repro.analysis.timeline import timeline_chart
        _, _, timeline, _ = traced
        chart = timeline_chart(timeline)
        assert "page balance" in chart
        assert "MDR replicate" in chart
        assert "p0 link util" in chart

    def test_chart_handles_empty_timeline(self):
        from repro.analysis.timeline import TimelineRecorder, timeline_chart
        recorder = TimelineRecorder.__new__(TimelineRecorder)
        recorder.samples = []
        assert timeline_chart(recorder) == "timeline: no samples"
