"""Sweep orchestrator tests: parity, resume, fault tolerance, catalog.

The pool tests run real (tiny) simulations across worker processes, so
they double as an integration test of pickling the GPU config and
shipping RunResults back.
"""

import dataclasses
import time

import pytest

from repro.config.presets import small_config
from repro.config.topology import Architecture, ReplicationPolicy
from repro.core.system import RunResult
from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.experiments.store import ResultStore
from repro.orchestrator import (
    SWEEPABLE,
    ProgressReporter,
    Sweep,
    SweepOrchestrator,
    figure_sweep,
)
from repro.power.energy import EnergyBreakdown


def tiny_gpu():
    return small_config(num_channels=2, warps_per_sm=4)


def make_runner(tmp_path=None):
    store = ResultStore(tmp_path) if tmp_path is not None else None
    return ExperimentRunner(base_gpu=tiny_gpu(), store=store)


TINY_SWEEP_KEYS = [
    RunKey("KMEANS"),
    RunKey("KMEANS", Architecture.NUBA,
           replication=ReplicationPolicy.MDR),
    RunKey("AN"),
]


def tiny_sweep():
    return Sweep.of("tiny", TINY_SWEEP_KEYS)


def _dummy_result() -> RunResult:
    return RunResult("dummy", 1, 1, 1, 0.0, 0.0, 0.0, 0, 0, 0,
                     EnergyBreakdown(0.0, 0.0, 0.0, 0.0, 0.0), {})


# Pool task overrides must be module-level so workers can unpickle them.

def _slow_task(key: RunKey) -> RunResult:
    if key.benchmark == "AN":
        time.sleep(60)
    return _dummy_result()


def _sluggish_task(key: RunKey) -> RunResult:
    """Slower than the test timeout, but finishes quickly inline."""
    time.sleep(1.5)
    return _dummy_result()


def _crashy_task(key: RunKey) -> RunResult:
    if key.benchmark == "AN":
        raise ValueError("injected fault")
    return _dummy_result()


class TestSweep:
    def test_grid_cross_product(self):
        sweep = Sweep.grid("g", ["KMEANS", "AN"], {
            "uba": {"architecture": Architecture.MEM_SIDE_UBA},
            "nuba": {"architecture": Architecture.NUBA},
        })
        assert len(sweep) == 4
        assert sweep.points[0].label == "KMEANS/uba"
        assert sweep.points[3].key == RunKey("AN", Architecture.NUBA)

    def test_unique_keys_deduplicate(self):
        sweep = tiny_sweep()
        sweep.add("again", RunKey("KMEANS"))
        assert len(sweep) == 4
        assert len(sweep.unique_keys()) == 3

    def test_merge_and_labels(self):
        merged = Sweep.merge("m", [tiny_sweep(), tiny_sweep()])
        assert len(merged) == 6
        assert len(merged.labelled()) == 3


class TestInlineExecution:
    def test_workers_1_runs_inline(self):
        runner = make_runner()
        orchestrator = SweepOrchestrator(runner, workers=1)
        report = orchestrator.run(tiny_sweep())
        assert report.mode == "inline"
        assert report.ok
        assert report.simulated == 3
        assert runner.simulations_run == 3
        assert set(report.results) == set(TINY_SWEEP_KEYS)

    def test_inline_failure_recorded_after_retries(self):
        runner = make_runner()
        orchestrator = SweepOrchestrator(runner, workers=1, retries=2,
                                         backoff=0.0)
        report = orchestrator.run(
            Sweep.of("bad", [RunKey("NOPE"), RunKey("KMEANS")])
        )
        assert not report.ok
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.key == RunKey("NOPE")
        assert failure.attempts == 3  # 1 try + 2 retries
        assert report.retries == 2
        assert RunKey("KMEANS") in report.results  # sweep not sunk

    def test_duplicate_keys_executed_once(self):
        runner = make_runner()
        orchestrator = SweepOrchestrator(runner, workers=1)
        report = orchestrator.run(tiny_sweep(), tiny_sweep())
        assert report.duplicates == 3
        assert runner.simulations_run == 3


class TestPoolExecution:
    def test_parallel_matches_serial_bitwise(self):
        serial = make_runner()
        expected = {key: serial.run(key) for key in TINY_SWEEP_KEYS}

        runner = make_runner()
        orchestrator = SweepOrchestrator(runner, workers=2)
        report = orchestrator.run(tiny_sweep())
        assert report.ok and report.mode == "pool"
        assert report.simulated == 3
        for key, result in expected.items():
            assert dataclasses.asdict(report.results[key]) == \
                dataclasses.asdict(result)

    def test_results_published_to_runner_cache(self):
        runner = make_runner()
        SweepOrchestrator(runner, workers=2).run(tiny_sweep())
        # The figure path must now hit cache: no new simulations.
        runner.run(TINY_SWEEP_KEYS[0])
        assert runner.simulations_run == 0

    def test_worker_exception_retried_then_recorded(self):
        runner = make_runner()
        orchestrator = SweepOrchestrator(
            runner, workers=2, retries=1, backoff=0.0,
            task_fn=_crashy_task,
        )
        report = orchestrator.run(
            Sweep.of("crash", [RunKey("AN"), RunKey("KMEANS")])
        )
        assert len(report.failures) == 1
        assert report.failures[0].key == RunKey("AN")
        assert report.failures[0].attempts == 2
        assert "injected fault" in report.failures[0].error
        assert RunKey("KMEANS") in report.results

    def test_timeout_restarts_pool_and_records_failure(self):
        runner = make_runner()
        orchestrator = SweepOrchestrator(
            runner, workers=2, timeout=0.5, retries=1, backoff=0.0,
            task_fn=_slow_task,
        )
        report = orchestrator.run(
            Sweep.of("slow", [RunKey("AN"), RunKey("KMEANS")])
        )
        assert len(report.failures) == 1
        assert "timed out" in report.failures[0].error
        assert report.pool_restarts >= 1
        assert RunKey("KMEANS") in report.results

    def test_exhausted_restarts_degrade_to_inline(self):
        # Every point outlives the timeout and the restart budget is
        # zero, so the pool is torn down once and the leftovers must
        # complete inline (where no timeout applies) without tripping
        # over the already-shut-down executor.
        runner = make_runner()
        orchestrator = SweepOrchestrator(
            runner, workers=2, timeout=0.2, retries=3, backoff=0.0,
            max_pool_restarts=0, task_fn=_sluggish_task,
        )
        report = orchestrator.run(
            Sweep.of("sluggish", [RunKey("AN"), RunKey("KMEANS")])
        )
        assert report.ok
        assert report.mode == "pool+inline"
        assert set(report.results) == {RunKey("AN"), RunKey("KMEANS")}


class TestResume:
    def test_preseeded_store_skips_everything(self, tmp_path):
        first = make_runner(tmp_path)
        report = SweepOrchestrator(first, workers=1).run(tiny_sweep())
        assert report.simulated == 3

        resumed = make_runner(tmp_path)
        orchestrator = SweepOrchestrator(resumed, workers=2)
        rerun = orchestrator.run(tiny_sweep())
        assert rerun.cache_hits == 3
        assert rerun.simulated == 0
        assert resumed.simulations_run == 0
        assert set(rerun.results) == set(TINY_SWEEP_KEYS)

    def test_partial_store_runs_only_missing(self, tmp_path):
        first = make_runner(tmp_path)
        first.run(TINY_SWEEP_KEYS[0])

        resumed = make_runner(tmp_path)
        report = SweepOrchestrator(resumed, workers=1).run(tiny_sweep())
        assert report.cache_hits == 1
        assert report.simulated == 2

    def test_different_settings_do_not_share_entries(self, tmp_path):
        # The satellite bug: mdr_epoch/max_cycles change results but
        # were missing from the fingerprint.
        first = ExperimentRunner(base_gpu=tiny_gpu(), mdr_epoch=2000,
                                 store=ResultStore(tmp_path))
        first.run(TINY_SWEEP_KEYS[1])

        other = ExperimentRunner(base_gpu=tiny_gpu(), mdr_epoch=500,
                                 store=ResultStore(tmp_path))
        report = SweepOrchestrator(other, workers=1).run(
            Sweep.of("s", [TINY_SWEEP_KEYS[1]])
        )
        assert report.cache_hits == 0
        assert other.simulations_run == 1


class TestCatalog:
    def test_every_cli_figure_has_a_sweep(self):
        from repro.cli import FIGURES
        from repro.orchestrator import FIGURE_SWEEPS
        assert set(FIGURE_SWEEPS) == set(FIGURES)
        assert "fig7" in SWEEPABLE and "table2" not in SWEEPABLE

    @pytest.mark.parametrize("name,figure_fn", [
        ("fig7", figures.fig7_performance),
        ("fig8", figures.fig8_bandwidth),
        ("fig11", figures.fig11_page_allocation),
        ("fig12", figures.fig12_replication),
        ("fig13", figures.fig13_energy),
        ("sec76", figures.sec76_alternatives),
    ])
    def test_sweep_covers_figure_exactly(self, name, figure_fn):
        """After the declarative sweep runs, the figure function must
        not simulate a single extra point."""
        benches = ["KMEANS", "AN"]
        runner = make_runner()
        report = SweepOrchestrator(runner, workers=1).run(
            figure_sweep(name, runner, benches)
        )
        assert report.ok
        simulated = runner.simulations_run
        figure_fn(runner, benches)
        assert runner.simulations_run == simulated

    def test_fig10_sweep_covers_figure(self):
        runner = make_runner()
        report = SweepOrchestrator(runner, workers=1).run(
            figure_sweep("fig10", runner, ["KMEANS"])
        )
        assert report.ok
        simulated = runner.simulations_run
        figures.fig10_noc_power(runner, ["KMEANS"])
        assert runner.simulations_run == simulated

    def test_empty_sweeps_for_system_figures(self):
        runner = make_runner()
        assert len(figure_sweep("table2", runner, ["KMEANS"])) == 0
        assert len(figure_sweep("fig3", runner, ["KMEANS"])) == 0

    def test_unknown_figure_raises(self):
        runner = make_runner()
        with pytest.raises(KeyError, match="unknown figure"):
            figure_sweep("fig99", runner, None)


class TestProgressReporter:
    def test_counts_and_utilization(self):
        reporter = ProgressReporter(stream=None)
        reporter.start(total=4, workers=2)
        reporter.cache_hit("a")
        reporter.point_done("b", 1.0)
        reporter.point_done("c", 1.0)
        reporter.point_failed("d", "boom")
        assert reporter.done == 4
        assert reporter.executed == 2
        assert reporter.cached == 1
        assert reporter.failed == 1
        assert reporter.seconds_per_point() == pytest.approx(1.0)
        assert 0.0 <= reporter.utilization() <= 1.0
        assert reporter.eta_seconds() == 0.0

    def test_status_line_renders(self):
        reporter = ProgressReporter(stream=None, label="t")
        reporter.start(total=2, workers=1)
        reporter.point_done("a", 0.5)
        line = reporter.status_line()
        assert "1/2" in line and "[t]" in line


class TestProgressMath:
    """Unit coverage for the derived-metric math on its own."""

    def test_seconds_per_point_zero_when_nothing_executed(self):
        reporter = ProgressReporter(stream=None)
        reporter.start(total=3, workers=1)
        reporter.cache_hit("a")  # cached points don't count as executed
        assert reporter.seconds_per_point() == 0.0

    def test_eta_none_before_first_executed_point(self):
        reporter = ProgressReporter(stream=None)
        reporter.start(total=3, workers=1)
        assert reporter.eta_seconds() is None
        reporter.cache_hit("a")
        assert reporter.eta_seconds() is None  # still no rate signal

    def test_eta_zero_once_done(self):
        reporter = ProgressReporter(stream=None)
        reporter.start(total=1, workers=1)
        reporter.point_done("a", 2.0)
        assert reporter.eta_seconds() == 0.0

    def test_eta_scales_with_rate_and_workers(self):
        reporter = ProgressReporter(stream=None)
        reporter.start(total=5, workers=2)
        reporter.point_done("a", 4.0)
        # 4 remaining at 4 s/point over 2 workers = 8 seconds.
        assert reporter.eta_seconds() == pytest.approx(8.0)

    def test_utilization_zero_at_zero_wall(self):
        reporter = ProgressReporter(stream=None)
        reporter.start(total=2, workers=2)
        # No wall-clock has elapsed yet (and nothing executed):
        # utilization must be 0.0, not a ZeroDivisionError.
        assert reporter.utilization() == 0.0

    def test_utilization_bounded_by_one(self):
        reporter = ProgressReporter(stream=None)
        reporter.start(total=4, workers=1)
        time.sleep(0.01)
        reporter.point_done("a", 100.0)  # busy time >> wall time
        assert reporter.utilization() == 1.0

    def test_failed_points_count_toward_done(self):
        reporter = ProgressReporter(stream=None)
        reporter.start(total=2, workers=1)
        reporter.point_failed("a", "boom")
        reporter.point_done("b", 1.0)
        assert reporter.done == 2
        assert reporter.failed == 1
        assert reporter.eta_seconds() == 0.0


class TestProgressEvents:
    """The structured on_event hook the service layer streams from."""

    def collect(self):
        events = []
        reporter = ProgressReporter(stream=None, on_event=events.append)
        return reporter, events

    def test_event_sequence_for_a_sweep(self):
        reporter, events = self.collect()
        reporter.start(total=3, workers=2)
        reporter.cache_hit("a")
        reporter.point_done("b", 1.5)
        reporter.point_failed("c", "boom")
        reporter.finish()
        assert [e["type"] for e in events] == [
            "start", "cache_hit", "point_done", "point_failed", "finish",
        ]

    def test_events_carry_counters_and_metrics(self):
        reporter, events = self.collect()
        reporter.start(total=2, workers=1)
        reporter.point_done("a", 2.0)
        event = events[-1]
        assert event["point"] == "a"
        assert event["elapsed"] == pytest.approx(2.0)
        assert event["done"] == 1 and event["total"] == 2
        assert event["executed"] == 1
        assert event["seconds_per_point"] == pytest.approx(2.0)
        assert event["eta_seconds"] == pytest.approx(2.0)
        assert 0.0 <= event["utilization"] <= 1.0

    def test_retry_and_note_events(self):
        reporter, events = self.collect()
        reporter.start(total=1, workers=1)
        reporter.point_retried("a", "timed out", attempt=2)
        reporter.note("pool rebuilt")
        retried = events[1]
        assert retried["type"] == "point_retried"
        assert retried["reason"] == "timed out"
        assert retried["attempt"] == 2
        assert events[2]["type"] == "note"
        assert events[2]["message"] == "pool rebuilt"

    def test_multiple_listeners_all_fire(self):
        first, second = [], []
        reporter = ProgressReporter(stream=None, on_event=first.append)
        reporter.on_event(second.append)
        reporter.start(total=1, workers=1)
        assert len(first) == len(second) == 1

    def test_broken_listener_does_not_break_progress(self):
        def explode(event):
            raise RuntimeError("listener bug")
        reporter = ProgressReporter(stream=None, on_event=explode)
        reporter.start(total=1, workers=1)
        reporter.point_done("a", 1.0)  # must not raise
        assert reporter.done == 1


class TestCancellation:
    """The orchestrator's cooperative stop event (service cancel path)."""

    def test_inline_stop_between_points(self):
        import threading
        runner = make_runner()
        stop = threading.Event()

        calls = []

        def task(key):
            calls.append(key)
            stop.set()  # request cancellation after the first point
            return _dummy_result()

        orchestrator = SweepOrchestrator(runner, workers=1,
                                         task_fn=task)
        orchestrator.stop = stop
        report = orchestrator.run(tiny_sweep())
        assert report.cancelled
        assert len(calls) == 1
        assert len(report.results) == 1
        assert "CANCELLED" in report.summary()

    def test_pool_stop_kills_workers(self):
        import threading
        runner = make_runner()
        stop = threading.Event()
        orchestrator = SweepOrchestrator(runner, workers=2,
                                         task_fn=_slow_task, stop=stop)
        sweep = Sweep.of("stuck", [RunKey("AN")])  # sleeps 60s in pool

        began = time.monotonic()
        thread = threading.Thread(
            target=lambda: setattr(self, "report", orchestrator.run(sweep))
        )
        thread.start()
        time.sleep(1.0)
        stop.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert time.monotonic() - began < 30
        assert self.report.cancelled
        assert not self.report.results

    def test_unset_stop_changes_nothing(self):
        runner = make_runner()
        orchestrator = SweepOrchestrator(runner, workers=1)
        report = orchestrator.run(tiny_sweep())
        assert not report.cancelled
        assert len(report.results) == len(tiny_sweep())
