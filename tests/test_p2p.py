"""Partition point-to-point link tests (Sections 2-3)."""

import pytest

from repro.noc.p2p import PartitionLinks
from repro.sim.request import AccessKind, MemoryRequest


def _links(width=62.5, latency=1):
    requests, replies = [], []
    links = PartitionLinks(
        0, width, latency,
        request_sink=lambda r: (requests.append(r), True)[1],
        reply_sink=lambda r: (replies.append(r), True)[1],
    )
    return links, requests, replies


def _load(line=0):
    request = MemoryRequest(AccessKind.LOAD, line, sm_id=0)
    return request


class TestPartitionLinks:
    def test_request_and_reply_directions_are_independent(self):
        links, requests, replies = _links()
        links.send_request(_load())
        reply = _load()
        links.send_reply(reply)
        for cycle in range(6):
            links.tick(cycle)
        assert len(requests) == 1
        assert replies == [reply]

    def test_baseline_width_matches_local_link_budget(self):
        """62.5 B/cycle per partition = 2.8 TB/s over 32 partitions at
        1.4 GHz (Section 6)."""
        links, _, _ = _links(width=62.5)
        assert links.request_link.width_bytes == pytest.approx(62.5)

    def test_reply_serialisation(self):
        """A 136 B reply needs three cycles of credit at 62.5 B/cycle."""
        links, _, replies = _links(latency=0)
        links.send_reply(_load())
        links.tick(0)
        links.tick(1)
        assert replies == []
        links.tick(2)
        links.tick(3)
        assert len(replies) == 1

    def test_pending_accounting(self):
        links, _, _ = _links()
        links.send_request(_load())
        links.send_reply(_load())
        assert links.pending == 2
        for cycle in range(8):
            links.tick(cycle)
        assert links.pending == 0

    def test_bytes_transferred_sums_directions(self):
        links, _, _ = _links(latency=0)
        links.send_request(_load())   # 8 bytes
        links.send_reply(_load())     # 136 bytes
        for cycle in range(8):
            links.tick(cycle)
        assert links.bytes_transferred == 8 + 136

    def test_higher_bandwidth_than_noc_port(self):
        """The architectural point: a partition's local link (62.5
        B/cycle) is ~4x one NoC port (15.6 B/cycle), which is what makes
        local LLC accesses cheap."""
        assert 62.5 / 15.625 == pytest.approx(4.0)
