"""NoC power model and GPU energy accounting tests."""

import pytest

from repro.config.gpu import NoCConfig
from repro.config.presets import baseline_config
from repro.noc.power import (
    CrossbarPowerModel,
    NoCEnergyAccount,
    power_ratio,
)
from repro.power.energy import EnergyBreakdown, GPUEnergyModel


class TestCrossbarPowerModel:
    def test_static_power_quadratic_in_ports(self):
        """The paper's core scaling argument: crossbar overhead grows
        quadratically with endpoint count [22, 69, 70, 79]."""
        small = CrossbarPowerModel(ports=16, port_width_bytes=16, stages=2)
        big = CrossbarPowerModel(ports=64, port_width_bytes=16, stages=2)
        assert big.static_power == pytest.approx(16 * small.static_power)

    def test_static_power_linear_in_width(self):
        narrow = CrossbarPowerModel(ports=64, port_width_bytes=8, stages=2)
        wide = CrossbarPowerModel(ports=64, port_width_bytes=64, stages=2)
        assert wide.static_power == pytest.approx(8 * narrow.static_power)

    def test_dynamic_energy_linear_in_bytes_and_stages(self):
        model = CrossbarPowerModel(ports=64, port_width_bytes=16, stages=2)
        assert model.dynamic_energy(2000) == pytest.approx(
            2 * model.dynamic_energy(1000)
        )
        one_stage = CrossbarPowerModel(ports=64, port_width_bytes=16,
                                       stages=1)
        assert model.dynamic_energy(1000) == pytest.approx(
            2 * one_stage.dynamic_energy(1000)
        )

    def test_from_config(self):
        noc = NoCConfig()
        model = CrossbarPowerModel.from_config(noc)
        assert model.ports == 64
        assert model.stages == 2

    def test_nuba_noc_cheaper_than_uba_noc(self):
        """Same bandwidth: the NUBA inter-slice crossbar (64 endpoints)
        is cheaper than the UBA SM-to-slice crossbar (128 endpoints)."""
        uba = CrossbarPowerModel(ports=128, port_width_bytes=16, stages=2)
        nuba = CrossbarPowerModel(ports=64, port_width_bytes=16, stages=2)
        assert nuba.static_power < uba.static_power / 2

    def test_narrow_noc_power_reduction_order_of_magnitude(self):
        """The Figure 10 headline: a 700 GB/s NoC versus a 5.6 TB/s NoC
        saves roughly an order of magnitude of NoC power."""
        cycles, uba_traffic, nuba_traffic = 100_000, 5.0e8, 1.0e8
        wide = CrossbarPowerModel(ports=128, port_width_bytes=64, stages=2)
        narrow = CrossbarPowerModel(ports=64, port_width_bytes=8, stages=2)
        ratio = power_ratio(
            wide.energy(cycles, uba_traffic),
            narrow.energy(cycles, nuba_traffic),
        )
        assert ratio > 5.0


class TestNoCEnergyAccount:
    def test_aggregates_registered_networks(self):
        account = NoCEnergyAccount()
        model = CrossbarPowerModel(ports=4, port_width_bytes=8, stages=1)
        account.register_crossbar("noc", model, lambda: 1000.0)
        account.register_p2p("links", lambda: 500.0)
        total = account.total_energy(100)
        assert total == pytest.approx(
            model.energy(100, 1000.0) + 0.00025 * 500.0
        )

    def test_breakdown_names(self):
        account = NoCEnergyAccount()
        model = CrossbarPowerModel(ports=4, port_width_bytes=8, stages=1)
        account.register_crossbar("noc", model, lambda: 0.0)
        account.register_p2p("links", lambda: 0.0)
        assert set(account.breakdown(10)) == {"noc", "links"}

    def test_power_ratio_validates(self):
        with pytest.raises(ValueError):
            power_ratio(1.0, 0.0)


class TestGPUEnergyModel:
    def test_breakdown_components(self):
        model = GPUEnergyModel(baseline_config())
        breakdown = model.breakdown(
            cycles=1000, instructions=5000, l1_accesses=2000,
            llc_accesses=1000, dram_lines=500, noc_energy=100.0,
        )
        assert breakdown.noc == 100.0
        assert breakdown.total == pytest.approx(
            breakdown.noc + breakdown.sm + breakdown.cache
            + breakdown.dram + breakdown.static
        )
        assert 0 < breakdown.noc_fraction < 1

    def test_normalized_to_baseline(self):
        model = GPUEnergyModel(baseline_config())
        base = model.breakdown(1000, 5000, 2000, 1000, 500, 100.0)
        cheaper = model.breakdown(800, 5000, 2000, 1000, 500, 40.0)
        norm = cheaper.normalized_to(base)
        assert norm["total"] < 1.0
        assert norm["noc"] == pytest.approx(40.0 / base.total)

    def test_normalize_requires_positive_baseline(self):
        zero = EnergyBreakdown(0, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            zero.normalized_to(zero)

    def test_dram_dominates_dynamic_energy(self):
        """Off-chip transfers are the most expensive events, which is why
        locality saves total GPU energy (Section 7.4)."""
        model = GPUEnergyModel(baseline_config())
        breakdown = model.breakdown(
            cycles=1, instructions=1, l1_accesses=1, llc_accesses=1,
            dram_lines=1, noc_energy=0.0,
        )
        assert breakdown.dram > breakdown.cache
        assert breakdown.dram > breakdown.sm
