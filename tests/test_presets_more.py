"""Additional preset/topology coverage."""

import pytest

from repro.config.presets import (
    baseline_config,
    mcm_config,
    scaled_config,
    small_config,
    with_partition_ratio,
)
from repro.config.topology import MCMSpec, PartitionSpec


class TestMCMConfig:
    def test_default_is_double_baseline(self):
        gpu = mcm_config()
        base = baseline_config()
        assert gpu.num_sms == 2 * base.num_sms
        assert gpu.num_channels == 2 * base.num_channels

    def test_modules_must_divide(self):
        with pytest.raises(ValueError):
            mcm_config(modules=7, base=small_config())

    def test_custom_base(self):
        gpu = mcm_config(modules=4, base=scaled_config(2.0, small_config()))
        assert gpu.num_channels % 4 == 0


class TestPartitionSpec:
    def test_defaults_match_paper(self):
        spec = PartitionSpec()
        assert (spec.sms, spec.llc_slices, spec.memory_channels) == (2, 2, 1)

    def test_rejects_empty_partitions(self):
        with pytest.raises(ValueError):
            PartitionSpec(sms=0)


class TestMCMSpec:
    def test_paper_defaults(self):
        spec = MCMSpec()
        assert spec.modules == 4
        assert spec.inter_module_bandwidth_gbps == 720.0


class TestPartitionRatio:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            with_partition_ratio(baseline_config(), 0)

    def test_one_slice_per_channel_doubles_sets(self):
        base = baseline_config()
        cfg = with_partition_ratio(base, 1)
        assert cfg.num_llc_slices == base.num_channels
        assert cfg.llc_slice.sets == 2 * base.llc_slice.sets
