"""Property-based NoC tests: packet conservation and bounded bandwidth."""

from hypothesis import given, settings, strategies as st

from repro.noc.crossbar import Crossbar

packet_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # src port
        st.integers(min_value=0, max_value=3),   # dest port
        st.integers(min_value=1, max_value=160),  # size bytes
    ),
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(packets=packet_lists)
def test_crossbar_conserves_packets(packets):
    """Every accepted packet is delivered exactly once, none invented."""
    xbar = Crossbar("x", ports=4, port_bytes_per_cycle=16, latency=2)
    delivered = []
    for port in range(4):
        xbar.set_sink(port, lambda item: (delivered.append(item), True)[1])

    accepted = []
    for index, (src, dest, size) in enumerate(packets):
        if xbar.inject(src, dest, ("pkt", index), size):
            accepted.append(("pkt", index))

    # Run long enough for everything to drain.
    cycle = 0
    while xbar.pending and cycle < 10_000:
        xbar.tick(cycle)
        cycle += 1

    assert sorted(delivered) == sorted(accepted)
    assert xbar.packets_transferred == len(accepted)


@settings(max_examples=30, deadline=None)
@given(
    packets=packet_lists,
    width=st.sampled_from([8, 16, 64]),
)
def test_crossbar_respects_port_bandwidth(packets, width):
    """Bytes ejected at any port never exceed width x cycles (+ one
    cycle of banked credit)."""
    xbar = Crossbar("x", ports=4, port_bytes_per_cycle=width, latency=0)
    ejected = {port: 0 for port in range(4)}

    def make_sink(port):
        def sink(item):
            ejected[port] += item
            return True
        return sink

    for port in range(4):
        xbar.set_sink(port, make_sink(port))

    for src, dest, size in packets:
        xbar.inject(src, dest, size, size)

    cycles = 0
    while xbar.pending and cycles < 5_000:
        xbar.tick(cycles)
        cycles += 1

    budget = width * max(1, cycles) + 256  # one packet of banked credit
    assert all(total <= budget for total in ejected.values())


@settings(max_examples=30, deadline=None)
@given(packets=packet_lists)
def test_crossbar_per_flow_fifo(packets):
    """Packets of the same (src, dest) flow arrive in injection order."""
    xbar = Crossbar("x", ports=4, port_bytes_per_cycle=32, latency=1)
    arrived = {}
    for port in range(4):
        xbar.set_sink(
            port,
            lambda item, port=port: (
                arrived.setdefault(item[0], []).append(item[1]), True
            )[1],
        )

    counters = {}
    for src, dest, size in packets:
        flow = (src, dest)
        sequence = counters.get(flow, 0)
        if xbar.inject(src, dest, (flow, sequence), size):
            counters[flow] = sequence + 1

    cycle = 0
    while xbar.pending and cycle < 10_000:
        xbar.tick(cycle)
        cycle += 1

    for flow, sequence_numbers in arrived.items():
        assert sequence_numbers == sorted(sequence_numbers)
