"""Property-based system tests: random workloads must conserve requests.

Hypothesis generates small random workloads (structure sizes, access
mixes, sharing patterns); every architecture must run them to completion
with a clean conservation audit. This fuzzes the full request path --
routing, queues, MSHRs, replication, atomics -- far beyond the
hand-written scenarios.
"""

import random as stdlib_random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config.presets import small_config
from repro.config.topology import (
    Architecture,
    ReplicationPolicy,
    TopologySpec,
)
from repro.core.builders import build_system
from repro.sim.request import AccessKind
from repro.sm.warp import Compute, MemAccess
from repro.workloads.benchmark import (
    Benchmark,
    KernelSpec,
    StructureSpec,
)

GPU = small_config(num_channels=2, warps_per_sm=4)


def _random_body(ctx, cta, warp):
    """A reproducible random instruction stream driven by ctx params."""
    p = ctx.params
    rng = stdlib_random.Random(int(p["seed"]) * 977 + cta * 31 + warp)
    regions = list(ctx.regions.values())
    for _ in range(int(p["accesses"])):
        region = rng.choice(regions)
        span = region.pages * 32
        roll = rng.random()
        if roll < p["store_fraction"] and region.name == "out":
            kind = AccessKind.STORE
        elif roll < p["store_fraction"] + p["atomic_fraction"]:
            kind = AccessKind.ATOMIC
            region = ctx.region("out")
            span = region.pages * 32
        else:
            kind = AccessKind.LOAD
        targets = tuple(
            region.line_target(rng.randrange(span))
            for _ in range(rng.randint(1, 4))
        )
        yield MemAccess(kind, targets, space=region.name)
        if rng.random() < 0.5:
            yield Compute(rng.randint(1, 3))


def _random_benchmark(data_pages, shared_pages, accesses, store_fraction,
                      atomic_fraction, seed):
    return Benchmark(
        name="fuzz", abbr="FUZZ", sharing="high",
        structures=(
            StructureSpec("data", data_pages),
            StructureSpec("shared", shared_pages),
            StructureSpec("out", 4, written=True),
        ),
        kernels=(
            KernelSpec("main", _random_body,
                       reads=("data", "shared"), writes=("out",),
                       atomics=("out",), ctas_per_sm=2),
        ),
        params={
            "accesses": accesses,
            "store_fraction": store_fraction,
            "atomic_fraction": atomic_fraction,
            "seed": seed,
        },
        seed=seed,
    )


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    data_pages=st.integers(min_value=1, max_value=24),
    shared_pages=st.integers(min_value=1, max_value=24),
    accesses=st.integers(min_value=1, max_value=40),
    store_fraction=st.floats(min_value=0.0, max_value=0.3),
    atomic_fraction=st.floats(min_value=0.0, max_value=0.2),
    seed=st.integers(min_value=0, max_value=10_000),
    arch=st.sampled_from(list(Architecture)),
    replication=st.sampled_from(list(ReplicationPolicy)),
)
def test_random_workloads_conserve_requests(
    data_pages, shared_pages, accesses, store_fraction, atomic_fraction,
    seed, arch, replication,
):
    bench = _random_benchmark(
        data_pages, shared_pages, accesses, store_fraction,
        atomic_fraction, seed,
    )
    topo = TopologySpec(architecture=arch, replication=replication,
                        mdr_epoch=500)
    system = build_system(GPU, topo)
    workload = bench.instantiate(GPU)
    result = system.run_workload(workload, max_cycles=1_000_000)
    assert result.cycles > 0
    assert system.audit() == []
