"""Property-based trace-codec tests: arbitrary streams round-trip."""

import io

from hypothesis import given, settings, strategies as st

from repro.sim.request import AccessKind
from repro.sm.warp import Barrier, Compute, MemAccess
from repro.workloads.benchmark import CompiledKernel
from repro.workloads.trace import TraceWorkload, record_trace

targets = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000),
              st.integers(min_value=0, max_value=31)),
    min_size=1, max_size=6,
).map(tuple)

instructions = st.one_of(
    st.builds(Compute, st.integers(min_value=1, max_value=16)),
    st.just(Barrier()),
    st.builds(
        MemAccess,
        st.sampled_from(list(AccessKind)),
        targets,
        space=st.sampled_from(["data", "out", "weights", "counters"]),
    ),
)


class _ListWorkload:
    """Minimal workload wrapper over explicit per-warp streams."""

    name = "prop"

    def __init__(self, streams):
        self._streams = streams

    def compiled_kernels(self):
        streams = self._streams

        def factory(cta, warp):
            return iter(streams[cta])

        return [CompiledKernel(
            name="k", num_ctas=len(streams), warps_per_cta=1,
            warp_factory=factory, read_only_spaces={"weights"},
        )]


@settings(max_examples=40, deadline=None)
@given(streams=st.lists(st.lists(instructions, max_size=12),
                        min_size=1, max_size=4))
def test_arbitrary_streams_round_trip(streams):
    workload = _ListWorkload(streams)
    buffer = io.StringIO()
    record_trace(workload, buffer)
    buffer.seek(0)
    replayed = TraceWorkload.load(buffer)
    kernel = replayed.compiled_kernels()[0]
    assert kernel.read_only_spaces == {"weights"}
    for cta, stream in enumerate(streams):
        assert list(kernel.warp_factory(cta, 0)) == stream
