"""Memory-request and tracker tests."""

import pytest

from repro.sim.request import (
    AccessKind,
    LINE_BYTES,
    MemoryRequest,
    READ_REQUEST_BYTES,
    REPLY_BYTES,
    RequestTracker,
    WRITE_REQUEST_BYTES,
)


class TestPacketSizes:
    """Section 6: 8 B read requests, 16 B writes, 136 B replies."""

    def test_constants(self):
        assert LINE_BYTES == 128
        assert READ_REQUEST_BYTES == 8
        assert WRITE_REQUEST_BYTES == 16
        assert REPLY_BYTES == 136  # 128 B data + 8 B control

    def test_load_sizes(self):
        request = MemoryRequest(AccessKind.LOAD, 0, sm_id=0)
        assert request.request_bytes == 8
        assert request.reply_bytes == 136

    def test_read_only_load_sizes_match_load(self):
        """The read-only bit rides in spare request-link bits: no size
        overhead (Section 5.2)."""
        ro = MemoryRequest(AccessKind.LOAD_RO, 0, sm_id=0)
        assert ro.request_bytes == READ_REQUEST_BYTES

    def test_store_sizes(self):
        request = MemoryRequest(AccessKind.STORE, 0, sm_id=0)
        assert request.request_bytes == 16
        assert request.reply_bytes == 8  # control-only ack


class TestLifecycle:
    def test_unique_ids(self):
        a = MemoryRequest(AccessKind.LOAD, 0, sm_id=0)
        b = MemoryRequest(AccessKind.LOAD, 0, sm_id=0)
        assert a.req_id != b.req_id

    def test_complete_invokes_callback(self):
        seen = []
        request = MemoryRequest(AccessKind.LOAD, 0, sm_id=0)
        request.on_complete = seen.append
        request.issue_cycle = 10
        request.complete(50)
        assert seen == [request]
        assert request.latency == 40

    def test_latency_before_completion_raises(self):
        with pytest.raises(ValueError):
            MemoryRequest(AccessKind.LOAD, 0, sm_id=0).latency

    def test_identity_semantics(self):
        """Requests hash/compare by identity (they are tracked through
        queues and MSHRs, never by value)."""
        a = MemoryRequest(AccessKind.LOAD, 7, sm_id=0)
        b = MemoryRequest(AccessKind.LOAD, 7, sm_id=0)
        assert a != b
        assert len({a, b}) == 2


class TestTracker:
    def _req(self, kind=AccessKind.LOAD, local=True, hit="llc"):
        request = MemoryRequest(kind, 0, sm_id=0)
        request.is_local = local
        request.hit_level = hit
        request.issue_cycle = 0
        request.complete_cycle = 100
        return request

    def test_local_remote_split(self):
        tracker = RequestTracker()
        tracker.record(self._req(local=True))
        tracker.record(self._req(local=False))
        tracker.record(self._req(local=False))
        assert tracker.local_fraction == pytest.approx(1 / 3)

    def test_replies_per_cycle_counts_loads_only(self):
        tracker = RequestTracker()
        tracker.record(self._req(AccessKind.LOAD))
        tracker.record(self._req(AccessKind.STORE))
        assert tracker.replies_per_cycle(100) == pytest.approx(0.01)

    def test_hit_level_accounting(self):
        tracker = RequestTracker()
        tracker.record(self._req(hit="llc"))
        tracker.record(self._req(hit="mem"))
        assert tracker.llc_hits == 1
        assert tracker.mem_accesses == 1

    def test_mean_latency(self):
        tracker = RequestTracker()
        tracker.record(self._req())
        assert tracker.mean_latency == pytest.approx(100.0)

    def test_empty_tracker_safe(self):
        tracker = RequestTracker()
        assert tracker.local_fraction == 0.0
        assert tracker.mean_latency == 0.0
        assert tracker.replies_per_cycle(100) == 0.0
        assert tracker.replies_per_cycle(0) == 0.0

    def test_as_dict_keys(self):
        tracker = RequestTracker()
        tracker.record(self._req())
        data = tracker.as_dict()
        assert data["completed"] == 1
        assert set(data) >= {"local", "remote", "llc_hits", "mean_latency"}
