"""Set-sampling profiler and MDR controller tests."""

import pytest

from repro.cache.sampling import SetSampler
from repro.config.topology import ReplicationPolicy
from repro.core.bwmodel import BandwidthModel, ModelInputs
from repro.core.mdr import MDRController

INPUTS = ModelInputs(bw_llc=100.0, bw_mem=20.0, bw_noc=40.0)


def _sampler():
    return SetSampler(slice_sets=16, ways=4, sampled_sets=16)


class TestSetSampler:
    def test_local_remote_fractions(self):
        sampler = _sampler()
        for line in range(10):
            sampler.observe(line, home_is_sampled_slice=True,
                            requester_in_sampled_partition=True,
                            is_read_only_shared=False)
        for line in range(10, 15):
            sampler.observe(line, home_is_sampled_slice=False,
                            requester_in_sampled_partition=True,
                            is_read_only_shared=True)
        profile = sampler.snapshot()
        assert profile.frac_local_norep == pytest.approx(10 / 15)
        # Read-only remote turns local under full replication.
        assert profile.frac_local_fullrep == pytest.approx(1.0)

    def test_norep_shadow_tracks_home_stream(self):
        sampler = _sampler()
        # A tiny working set hit twice: second round all hits.
        for _ in range(2):
            for line in range(8):
                sampler.observe(line, True, True, False)
        profile = sampler.snapshot()
        assert profile.hit_rate_norep == pytest.approx(0.5)

    def test_fullrep_shadow_sees_replica_pressure(self):
        sampler = _sampler()
        # Home stream fits; replicas of remote read-only lines overflow
        # the shadow -> full-replication hit rate must be lower.
        for _ in range(2):
            for line in range(32):
                sampler.observe(line, line < 8, True, is_read_only_shared=True)
        profile = sampler.snapshot()
        assert profile.hit_rate_fullrep <= profile.hit_rate_norep + 1e-9

    def test_remote_sharers_excluded_from_fullrep_shadow(self):
        sampler = _sampler()
        # Remote read-only sharers would hit their own replicas, so they
        # must not pressure the sampled slice's full-rep shadow.
        for line in range(8):
            sampler.observe(line, home_is_sampled_slice=True,
                            requester_in_sampled_partition=False,
                            is_read_only_shared=True)
        profile = sampler.snapshot()
        # No accesses attributed to the sampled partition at all.
        assert profile.observed == 0

    def test_reset_epoch(self):
        sampler = _sampler()
        sampler.observe(0, True, True, False)
        sampler.reset_epoch()
        assert sampler.snapshot().observed == 0

    def test_storage_budget_is_small(self):
        sampler = SetSampler(slice_sets=48, ways=16, sampled_sets=8)
        # Two shadow directories x 8 sets x 16 ways x 24 bits < 1 KB.
        assert sampler.storage_bits <= 8192


class TestMDRController:
    def _controller(self, policy=ReplicationPolicy.MDR):
        return MDRController(
            model=BandwidthModel(INPUTS),
            sampler=_sampler(),
            policy=policy,
        )

    def test_static_policies(self):
        assert self._controller(ReplicationPolicy.NONE).replicate is False
        assert self._controller(ReplicationPolicy.FULL).replicate is True

    def test_starts_conservative(self):
        assert self._controller().replicate is False

    def test_enables_replication_for_small_hot_remote_set(self):
        controller = self._controller()
        # Small remote read-only working set, revisited: both shadows hit.
        for _ in range(4):
            for line in range(8):
                controller.sampler.observe(line, False, True, True)
            for line in range(8, 12):
                controller.sampler.observe(line, True, True, False)
        controller.on_epoch(1000)
        assert controller.replicate is True
        assert controller.decisions[-1].bw_fullrep > (
            controller.decisions[-1].bw_norep
        )

    def test_avoids_replication_for_thrashing_set(self):
        controller = self._controller()
        # Huge remote read-only stream (no reuse): replicating it buys
        # nothing and destroys the hit rate.
        for line in range(4000):
            controller.sampler.observe(line, line % 16 == 0, True, True)
        controller.on_epoch(1000)
        assert controller.replicate is False

    def test_empty_epoch_keeps_decision(self):
        controller = self._controller()
        controller.replicate = True
        controller.on_epoch(1000)
        assert controller.replicate is True
        assert controller.decisions == []

    def test_static_policy_ignores_epochs(self):
        controller = self._controller(ReplicationPolicy.FULL)
        for line in range(4000):
            controller.sampler.observe(line, False, True, True)
        controller.on_epoch(1000)
        assert controller.replicate is True

    def test_kernel_boundary_resets(self):
        controller = self._controller()
        controller.replicate = True
        controller.on_kernel_boundary()
        assert controller.replicate is False

    def test_replication_epochs_counted(self):
        controller = self._controller()
        for _ in range(4):
            for line in range(8):
                controller.sampler.observe(line, False, True, True)
        controller.on_epoch(1000)
        assert controller.replication_epochs == int(controller.replicate)
