"""Service-layer tests: dedup, backpressure, streaming, cancellation.

The acceptance spine of the service PR lives here:

* N concurrent clients submitting the same point cause exactly ONE
  simulation while all N receive the identical RunResult;
* a full queue rejects with 429 + Retry-After (QueueFullError at the
  manager level);
* killing a job mid-run leaves the store consistent -- no partial
  entries, and the stale ``*.tmp`` strandings of SIGKILLed workers are
  swept by gc.
"""

import dataclasses
import json
import threading
import time
import urllib.request

import pytest

from repro.config.presets import small_config
from repro.config.topology import Architecture, ReplicationPolicy
from repro.core.system import RunResult
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.experiments.store import ResultStore
from repro.power.energy import EnergyBreakdown
from repro.service import (
    CodecError,
    EventLog,
    JobManager,
    QueueFullError,
    ServiceClient,
    ServiceError,
    ServiceServer,
    UnknownJobError,
    points_from_wire,
    runkey_from_dict,
    runkey_to_dict,
)


def tiny_gpu():
    return small_config(num_channels=2, warps_per_sm=4)


def make_runner(tmp_path=None):
    store = ResultStore(tmp_path) if tmp_path is not None else None
    return ExperimentRunner(base_gpu=tiny_gpu(), store=store)


def _dummy_result() -> RunResult:
    return RunResult("dummy", 7, 1, 1, 0.0, 0.0, 0.0, 0, 0, 0,
                     EnergyBreakdown(0.0, 0.0, 0.0, 0.0, 0.0), {})


# Module-level gate/counter for in-flight coalescing tests. The gated
# task blocks every execution until the test releases it, guaranteeing
# later submissions arrive while the first is still in flight.
_GATE = threading.Event()
_CALLS = []
_CALL_LOCK = threading.Lock()


def _gated_task(key: RunKey) -> RunResult:
    with _CALL_LOCK:
        _CALLS.append(key)
    assert _GATE.wait(20), "test forgot to release the gate"
    return _dummy_result()


def _pool_sleep_task(key: RunKey) -> RunResult:
    """Pool-mode task that outlives any test: must die by pool kill."""
    time.sleep(60)
    return _dummy_result()


def _failing_task(key: RunKey) -> RunResult:
    raise ValueError("injected service fault")


@pytest.fixture(autouse=True)
def _reset_gate():
    _GATE.clear()
    del _CALLS[:]
    yield
    _GATE.set()  # unstick any worker still waiting


@pytest.fixture
def manager_factory():
    managers = []

    def build(runner, **kwargs):
        kwargs.setdefault("backoff", 0.0)
        manager = JobManager(runner, **kwargs)
        managers.append(manager)
        return manager

    yield build
    _GATE.set()
    for manager in managers:
        manager.shutdown(cancel_running=True)


@pytest.fixture
def server_factory(manager_factory):
    servers = []

    def build(runner, **kwargs):
        manager = manager_factory(runner, **kwargs)
        server = ServiceServer(manager, port=0).start()
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.stop(shutdown_manager=False)


class TestCodec:
    def test_round_trip(self):
        key = RunKey("AN", Architecture.NUBA,
                     replication=ReplicationPolicy.MDR, noc_gbps=700.0)
        assert runkey_from_dict(runkey_to_dict(key)) == key

    def test_architecture_aliases(self):
        key = runkey_from_dict({"benchmark": "AN", "architecture": "uba"})
        assert key.architecture is Architecture.MEM_SIDE_UBA

    def test_unknown_field_rejected(self):
        with pytest.raises(CodecError, match="unknown RunKey field"):
            runkey_from_dict({"benchmark": "AN", "bogus": 1})

    def test_bad_enum_value_rejected(self):
        with pytest.raises(CodecError, match="bad replication"):
            runkey_from_dict({"benchmark": "AN", "replication": "xerox"})

    def test_missing_benchmark_rejected(self):
        with pytest.raises(CodecError, match="missing 'benchmark'"):
            runkey_from_dict({"architecture": "nuba"})

    def test_points_from_wire_labels(self):
        points = points_from_wire([
            {"benchmark": "AN", "label": "mine"},
            {"benchmark": "KMEANS"},
        ])
        assert points[0] == ("mine", RunKey("AN"))
        assert points[1][0] is None

    def test_empty_points_rejected(self):
        with pytest.raises(CodecError, match="must not be empty"):
            points_from_wire([])


class TestEventLog:
    def test_append_stamps_seq_and_snapshot(self):
        log = EventLog()
        log.append({"type": "a"})
        log.append({"type": "b"})
        events = log.snapshot()
        assert [e["seq"] for e in events] == [0, 1]
        assert log.snapshot(since=1)[0]["type"] == "b"

    def test_follow_drains_then_stops_on_close(self):
        log = EventLog()
        log.append({"type": "a"})
        seen = []

        def consume():
            for event in log.follow():
                seen.append(event["type"])

        thread = threading.Thread(target=consume)
        thread.start()
        time.sleep(0.1)
        log.append({"type": "b"})
        log.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert seen == ["a", "b"]

    def test_follow_timeout_bounds_wait(self):
        log = EventLog()
        begun = time.monotonic()
        assert list(log.follow(timeout=0.2)) == []
        assert time.monotonic() - begun < 5.0


class TestManagerBasics:
    def test_submit_executes_and_delivers(self, manager_factory):
        runner = make_runner()
        manager = manager_factory(runner, workers=1)
        job = manager.submit([(None, RunKey("KMEANS"))])
        manager.wait(job.id, timeout=60)
        assert job.state == "done"
        assert runner.simulations_run == 1
        (result,) = job.results.values()
        assert result.cycles > 0
        states = [s.state for s in job.point_status.values()]
        assert states == ["done"]

    def test_second_job_is_cache_hit(self, manager_factory):
        runner = make_runner()
        manager = manager_factory(runner, workers=1)
        first = manager.submit([(None, RunKey("KMEANS"))])
        manager.wait(first.id, timeout=60)
        second = manager.submit([(None, RunKey("KMEANS"))])
        assert second.state == "done"  # resolved at submission time
        assert [s.state for s in second.point_status.values()] == ["cached"]
        assert runner.simulations_run == 1
        assert dataclasses.asdict(next(iter(second.results.values()))) \
            == dataclasses.asdict(next(iter(first.results.values())))

    def test_failed_point_fails_job_with_error(self, manager_factory):
        runner = make_runner()
        manager = manager_factory(runner, workers=1, retries=0,
                                  task_fn=_failing_task)
        job = manager.submit([("p", RunKey("KMEANS"))])
        manager.wait(job.id, timeout=60)
        assert job.state == "failed"
        assert "injected service fault" in job.point_status["p"].error

    def test_unknown_job_raises(self, manager_factory):
        manager = manager_factory(make_runner(), workers=1)
        with pytest.raises(UnknownJobError):
            manager.get("job-nope")

    def test_duplicate_points_in_one_job_run_once(self, manager_factory):
        runner = make_runner()
        manager = manager_factory(runner, workers=1)
        key = RunKey("KMEANS")
        job = manager.submit([("a", key), ("b", key)])
        manager.wait(job.id, timeout=60)
        assert job.state == "done"
        assert runner.simulations_run == 1
        assert set(job.results) == {"a", "b"}
        assert dataclasses.asdict(job.results["a"]) == \
            dataclasses.asdict(job.results["b"])


class TestDedupProof:
    """The acceptance criterion: N clients, one simulation."""

    N = 6

    def test_concurrent_clients_one_simulation(self, server_factory):
        runner = make_runner()
        server = server_factory(runner, workers=2, queue_limit=16)
        key = RunKey("KMEANS", Architecture.NUBA,
                     replication=ReplicationPolicy.MDR)
        outcomes = [None] * self.N
        barrier = threading.Barrier(self.N)

        def client_thread(index: int) -> None:
            client = ServiceClient(server.url)
            barrier.wait(timeout=10)
            job = client.submit(points=[("p", key)])
            outcomes[index] = client.result(job["id"], wait=60.0)

        threads = [threading.Thread(target=client_thread, args=(i,))
                   for i in range(self.N)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads)

        # Exactly one simulation ran...
        assert runner.simulations_run == 1
        # ...and every client got the identical RunResult.
        assert all(outcome is not None for outcome in outcomes)
        payloads = [outcome["results"]["p"] for outcome in outcomes]
        assert all(payload == payloads[0] for payload in payloads)
        assert all(outcome["state"] == "done" for outcome in outcomes)
        counters = server.manager.counters
        assert counters["points_executed"] == 1
        assert (counters["points_coalesced"]
                + counters["points_cached"]) == self.N - 1

    def test_inflight_submissions_coalesce(self, manager_factory):
        """With the execution gated, later submissions MUST coalesce
        (not cache-hit): one task call, N subscribers."""
        runner = make_runner()
        manager = manager_factory(runner, workers=2,
                                  task_fn=_gated_task)
        key = RunKey("AN")
        first = manager.submit([(None, key)], tenant="t1")
        # Wait until the gated task actually holds the worker.
        deadline = time.monotonic() + 10
        while not _CALLS and time.monotonic() < deadline:
            time.sleep(0.01)
        assert _CALLS, "execution never started"
        others = [manager.submit([(None, key)], tenant=f"t{i}")
                  for i in range(2, 5)]
        assert all(
            [s.state for s in job.point_status.values()] == ["coalesced"]
            for job in others
        )
        _GATE.set()
        for job in [first] + others:
            manager.wait(job.id, timeout=60)
            assert job.state == "done"
        assert len(_CALLS) == 1
        assert manager.counters["points_coalesced"] == 3
        results = [dataclasses.asdict(next(iter(job.results.values())))
                   for job in [first] + others]
        assert all(result == results[0] for result in results)


class TestBackpressure:
    def test_queue_full_raises_manager_level(self, manager_factory):
        manager = manager_factory(make_runner(), workers=1,
                                  queue_limit=1, task_fn=_gated_task)
        running = manager.submit([(None, RunKey("AN"))])
        deadline = time.monotonic() + 10
        while not _CALLS and time.monotonic() < deadline:
            time.sleep(0.01)
        queued = manager.submit([(None, RunKey("KMEANS"))])
        with pytest.raises(QueueFullError) as excinfo:
            manager.submit([(None, RunKey("2MM"))])
        assert excinfo.value.retry_after >= 1.0
        assert manager.counters["jobs_rejected"] == 1
        _GATE.set()
        for job in (running, queued):
            manager.wait(job.id, timeout=60)
            assert job.state == "done"

    def test_queue_full_is_http_429_with_retry_after(self,
                                                     server_factory):
        server = server_factory(make_runner(), workers=1,
                                queue_limit=1, task_fn=_gated_task)
        client = ServiceClient(server.url)
        client.submit(points=[(None, RunKey("AN"))])
        deadline = time.monotonic() + 10
        while not _CALLS and time.monotonic() < deadline:
            time.sleep(0.01)
        client.submit(points=[(None, RunKey("KMEANS"))])
        with pytest.raises(ServiceError) as excinfo:
            client.submit(points=[(None, RunKey("2MM"))])
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1.0
        _GATE.set()

    def test_rejected_submission_enqueues_nothing(self, manager_factory):
        manager = manager_factory(make_runner(), workers=1,
                                  queue_limit=1, task_fn=_gated_task)
        manager.submit([(None, RunKey("AN"))])
        deadline = time.monotonic() + 10
        while not _CALLS and time.monotonic() < deadline:
            time.sleep(0.01)
        # A two-point job over the limit must be rejected atomically.
        with pytest.raises(QueueFullError):
            manager.submit([(None, RunKey("KMEANS")),
                            (None, RunKey("2MM"))])
        assert manager.stats()["queue_depth"] == 0
        _GATE.set()


class TestCancellation:
    def test_cancel_queued_job(self, manager_factory):
        manager = manager_factory(make_runner(), workers=1,
                                  queue_limit=8, task_fn=_gated_task)
        blocker = manager.submit([(None, RunKey("AN"))])
        deadline = time.monotonic() + 10
        while not _CALLS and time.monotonic() < deadline:
            time.sleep(0.01)
        victim = manager.submit([(None, RunKey("KMEANS"))])
        assert manager.cancel(victim.id)
        assert victim.state == "cancelled"
        assert manager.stats()["queue_depth"] == 0
        _GATE.set()
        manager.wait(blocker.id, timeout=60)
        assert blocker.state == "done"
        # Only the blocker's task ever ran.
        assert len(_CALLS) == 1

    def test_cancel_mid_run_leaves_store_consistent(self, manager_factory,
                                                    tmp_path):
        """Acceptance: a killed mid-run job must not corrupt the store.

        sim_workers=2 puts the execution on a real process pool, so
        cancellation kills a live worker process -- the harshest path.
        """
        runner = make_runner(tmp_path)
        manager = manager_factory(runner, workers=1, sim_workers=2,
                                  task_fn=_pool_sleep_task)
        job = manager.submit([(None, RunKey("KMEANS"))])
        deadline = time.monotonic() + 30
        while job.state != "running" and time.monotonic() < deadline:
            with manager._lock:
                running = any(s.state == "running"
                              for s in job.point_status.values())
            if running:
                break
            time.sleep(0.05)
        assert manager.cancel(job.id)
        manager.wait(job.id, timeout=60)
        assert job.state == "cancelled"
        assert not job.results
        # Store consistency: every entry (if any) is complete JSON,
        # and the cancelled point was never half-written.
        for path in tmp_path.glob("*.json"):
            json.loads(path.read_text())  # must not raise
        assert runner.lookup(RunKey("KMEANS")) is None

        # A SIGKILLed worker's stranded temporary is swept by gc.
        stranded = tmp_path / "KMEANS_x.deadbeef.tmp"
        stranded.write_text('{"partial":')
        outcome = runner.store.gc()
        assert stranded.exists()  # still inside the grace period
        import os
        old = time.time() - 3600
        os.utime(stranded, (old, old))
        outcome = runner.store.gc()
        assert outcome["tmp_swept"] == 1
        assert not stranded.exists()

    def test_cancel_spares_point_other_jobs_want(self, manager_factory):
        manager = manager_factory(make_runner(), workers=1,
                                  task_fn=_gated_task)
        key = RunKey("AN")
        keeper = manager.submit([(None, key)], tenant="keeper")
        deadline = time.monotonic() + 10
        while not _CALLS and time.monotonic() < deadline:
            time.sleep(0.01)
        quitter = manager.submit([(None, key)], tenant="quitter")
        assert manager.cancel(quitter.id)
        assert quitter.state == "cancelled"
        _GATE.set()
        manager.wait(keeper.id, timeout=60)
        # The shared execution survived the quitter's cancellation.
        assert keeper.state == "done"
        assert len(_CALLS) == 1


class TestTenantBounds:
    def test_one_tenant_cannot_hog_all_workers(self, manager_factory):
        manager = manager_factory(make_runner(), workers=2, per_tenant=1,
                                  queue_limit=8, task_fn=_gated_task)
        # Tenant A floods first; tenant B arrives second but must still
        # get a worker because A is capped at one.
        manager.submit([(None, RunKey("AN"))], tenant="a")
        manager.submit([(None, RunKey("KMEANS"))], tenant="a")
        manager.submit([(None, RunKey("2MM"))], tenant="b")
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            with manager._lock:
                by_tenant = dict(manager._tenant_running)
            if by_tenant.get("b"):
                break
            time.sleep(0.02)
        assert by_tenant.get("a", 0) == 1
        assert by_tenant.get("b", 0) == 1
        _GATE.set()


class TestHttpSurface:
    def test_healthz_and_stats(self, server_factory):
        server = server_factory(make_runner(), workers=1)
        client = ServiceClient(server.url)
        assert client.healthz() == {"ok": True}
        stats = client.stats()
        assert stats["workers"] == 1
        assert "counters" in stats

    def test_job_lifecycle_over_http(self, server_factory):
        runner = make_runner()
        server = server_factory(runner, workers=1)
        client = ServiceClient(server.url)
        job = client.submit(points=[("mine", RunKey("KMEANS"))],
                            name="smoke")
        assert job["state"] in ("queued", "running", "done")
        events = list(client.events(job["id"]))
        types = [event["type"] for event in events]
        assert types[0] == "start"
        assert "point_done" in types
        assert types[-1] == "job"
        done = [e for e in events if e["type"] == "point_done"]
        assert done[0]["point"] == "mine"
        assert done[0]["eta_seconds"] == 0.0
        payload = client.result(job["id"])
        assert payload["state"] == "done"
        assert payload["results"]["mine"]["cycles"] > 0
        status = client.job(job["id"])
        assert status["state"] == "done"
        assert status["points"][0]["state"] == "done"
        assert client.jobs()[0]["id"] == job["id"]

    def test_sse_content_type(self, server_factory):
        runner = make_runner()
        server = server_factory(runner, workers=1)
        client = ServiceClient(server.url)
        job = client.submit(points=[(None, RunKey("KMEANS"))])
        client.result(job["id"], wait=60.0)
        request = urllib.request.Request(
            f"{server.url}/jobs/{job['id']}/events",
            headers={"Accept": "text/event-stream"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["Content-Type"] == "text/event-stream"
            body = response.read().decode()
        lines = [line for line in body.splitlines() if line]
        assert all(line.startswith("data: ") for line in lines)
        assert json.loads(lines[0][len("data: "):])["type"] == "start"

    def test_result_before_done_is_409(self, server_factory):
        server = server_factory(make_runner(), workers=1,
                                task_fn=_gated_task)
        client = ServiceClient(server.url)
        job = client.submit(points=[(None, RunKey("AN"))])
        with pytest.raises(ServiceError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 409
        _GATE.set()

    def test_figure_submission_expands_points(self, server_factory):
        runner = make_runner()
        server = server_factory(runner, workers=2, queue_limit=64)
        client = ServiceClient(server.url)
        job = client.submit(figure="fig13", subset=["KMEANS"])
        assert job["points_total"] == 2  # uba + nuba per benchmark
        payload = client.result(job["id"], wait=120.0)
        assert payload["state"] == "done"
        assert set(payload["results"]) == {"KMEANS/uba", "KMEANS/nuba"}

    def test_cancel_over_http(self, server_factory):
        server = server_factory(make_runner(), workers=1,
                                task_fn=_gated_task)
        client = ServiceClient(server.url)
        blocker = client.submit(points=[(None, RunKey("AN"))])
        victim = client.submit(points=[(None, RunKey("KMEANS"))])
        outcome = client.cancel(victim["id"])
        assert outcome["state"] == "cancelled"
        _GATE.set()
        assert client.result(blocker["id"], wait=60.0)["state"] == "done"

    def test_unknown_job_is_404(self, server_factory):
        server = server_factory(make_runner(), workers=1)
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-nope")
        assert excinfo.value.status == 404

    def test_bad_submission_is_400(self, server_factory):
        server = server_factory(make_runner(), workers=1)
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/jobs", body={"points": [
                {"benchmark": "AN", "bogus": True},
            ]})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/jobs", body={})
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, server_factory):
        server = server_factory(make_runner(), workers=1)
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404


class TestStoreIntegration:
    def test_results_persist_across_managers(self, manager_factory,
                                             tmp_path):
        first_runner = make_runner(tmp_path)
        first = manager_factory(first_runner, workers=1)
        job = first.submit([(None, RunKey("KMEANS"))])
        first.wait(job.id, timeout=60)
        assert first_runner.simulations_run == 1

        second_runner = make_runner(tmp_path)
        second = manager_factory(second_runner, workers=1)
        rerun = second.submit([(None, RunKey("KMEANS"))])
        assert rerun.state == "done"  # straight from the store
        assert second_runner.simulations_run == 0

    def test_maintenance_applies_ttl_policy(self, manager_factory,
                                            tmp_path):
        import os
        runner = make_runner(tmp_path)
        manager = manager_factory(runner, workers=1,
                                  store_ttl_seconds=3600.0)
        job = manager.submit([(None, RunKey("KMEANS"))])
        manager.wait(job.id, timeout=60)
        entry = next(tmp_path.glob("*.json"))
        old = time.time() - 7200
        os.utime(entry, (old, old))
        outcome = manager.maintain()
        assert outcome["evicted"] == 1
        assert not list(tmp_path.glob("*.json"))
