"""Unit tests for queues, delay lines and bandwidth links."""

import pytest

from repro.sim.queues import BandwidthLink, BoundedQueue, DelayLine


class TestBoundedQueue:
    def test_push_pop_fifo(self):
        q = BoundedQueue(4)
        for i in range(3):
            assert q.push(i)
        assert [q.pop() for _ in range(3)] == [0, 1, 2]

    def test_full_rejects(self):
        q = BoundedQueue(2)
        assert q.push(1) and q.push(2)
        assert q.full
        assert not q.push(3)
        assert len(q) == 2

    def test_push_front_allows_retry_overflow(self):
        q = BoundedQueue(1)
        q.push("a")
        item = q.pop()
        q.push("b")
        q.push_front(item)  # may exceed capacity by one
        assert q.pop() == "a"
        assert q.pop() == "b"

    def test_peek_does_not_remove(self):
        q = BoundedQueue(2)
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_peek_empty_returns_none(self):
        assert BoundedQueue(1).peek() is None

    def test_peak_occupancy_tracked(self):
        q = BoundedQueue(8)
        for i in range(5):
            q.push(i)
        for _ in range(5):
            q.pop()
        assert q.peak_occupancy == 5

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)


class TestDelayLine:
    def test_delivers_after_delay(self):
        line = DelayLine(3)
        line.push("a", now=10)
        assert line.pop_ready(12) == []
        assert line.pop_ready(13) == ["a"]

    def test_zero_delay_delivers_same_cycle(self):
        line = DelayLine(0)
        line.push("a", now=5)
        assert line.pop_ready(5) == ["a"]

    def test_order_preserved(self):
        line = DelayLine(1)
        line.push("a", now=0)
        line.push("b", now=0)
        assert line.pop_ready(1) == ["a", "b"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayLine(-1)


class TestBandwidthLink:
    def _make(self, width, latency=0, accept=True):
        delivered = []

        def sink(item):
            if accept:
                delivered.append(item)
                return True
            return False

        link = BandwidthLink(width, latency, sink)
        return link, delivered

    def test_small_packets_flow_at_width(self):
        link, delivered = self._make(width=16, latency=0)
        for i in range(4):
            assert link.push(i, 8)
        link.tick(0)  # 16 bytes of credit -> two 8-byte packets
        link.tick(1)
        assert delivered == [0, 1] or len(delivered) >= 2

    def test_large_packet_serialises_over_cycles(self):
        # A 136-byte reply on a 62.5 B/cycle link needs ~3 busy cycles.
        link, delivered = self._make(width=62.5, latency=0)
        link.push("reply", 136)
        link.tick(0)
        link.tick(1)
        assert delivered == []  # 125 bytes of credit so far
        link.tick(2)  # credit reaches 187.5: the packet launches
        link.tick(3)  # and is delivered at the next tick's drain phase
        assert delivered == ["reply"]

    def test_latency_applied(self):
        link, delivered = self._make(width=64, latency=5)
        link.push("a", 8)
        link.tick(0)
        for cycle in range(1, 5):
            link.tick(cycle)
            assert delivered == []
        link.tick(5)
        assert delivered == ["a"]

    def test_sink_backpressure_blocks_head_of_line(self):
        delivered = []
        accepting = [False]

        def sink(item):
            if accepting[0]:
                delivered.append(item)
                return True
            return False

        link = BandwidthLink(64, 0, sink)
        link.push("a", 8)
        link.push("b", 8)
        link.tick(0)
        link.tick(1)
        assert delivered == []
        accepting[0] = True
        link.tick(2)
        assert delivered == ["a", "b"]

    def test_idle_link_does_not_bank_credit(self):
        link, delivered = self._make(width=10, latency=0)
        for cycle in range(100):  # idle
            link.tick(cycle)
        link.push("big", 100)
        link.tick(100)
        assert delivered == []  # cannot use banked idle bandwidth

    def test_bandwidth_ceiling_respected(self):
        link, delivered = self._make(width=16, latency=0)
        for i in range(100):
            link.push(i, 8)
        for cycle in range(10):
            link.tick(cycle)
        # 10 cycles x 16 B/cycle = 160 bytes = at most 20 packets.
        assert link.bytes_transferred <= 160 + 8

    def test_ingress_capacity(self):
        link, _ = self._make(width=1, latency=0)
        pushed = sum(1 for i in range(200) if link.push(i, 8))
        assert pushed == 64  # default capacity

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            BandwidthLink(0, 0, lambda item: True)

    def test_utilization(self):
        link, _ = self._make(width=8, latency=0)
        link.push("a", 8)
        link.tick(0)
        assert link.utilization(1) == pytest.approx(1.0)
