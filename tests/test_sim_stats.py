"""Unit tests for statistics primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import (
    Histogram,
    StatsRegistry,
    harmonic_mean,
    percent_improvement,
)


class TestHistogram:
    def test_add_and_total(self):
        h = Histogram()
        h.add(1, 3)
        h.add(2)
        assert h.total == 4
        assert h[1] == 3
        assert h[5] == 0

    def test_fraction(self):
        h = Histogram()
        h.add(1, 8)
        h.add(4, 2)
        assert h.fraction(1) == pytest.approx(0.8)
        assert h.fraction(9) == 0.0

    def test_fraction_empty(self):
        assert Histogram().fraction(1) == 0.0

    def test_bucket_fractions(self):
        h = Histogram()
        h.add(1, 5)
        h.add(3, 3)
        h.add(12, 2)
        buckets = [range(1, 2), range(2, 11), range(11, 65)]
        assert h.bucket_fractions(buckets) == pytest.approx([0.5, 0.3, 0.2])

    def test_keys_sorted(self):
        h = Histogram()
        for key in (5, 1, 3):
            h.add(key)
        assert h.keys() == [1, 3, 5]


class TestStatsRegistry:
    def test_bump_and_get(self):
        reg = StatsRegistry()
        reg.bump("llc.0.hits")
        reg.bump("llc.0.hits", 2)
        assert reg.get("llc.0.hits") == 3

    def test_prefix_suffix_sum(self):
        reg = StatsRegistry()
        reg.bump("llc.0.hits", 1)
        reg.bump("llc.1.hits", 2)
        reg.bump("llc.1.misses", 5)
        assert reg.sum("llc.", ".hits") == 3
        assert reg.sum("llc.") == 8

    def test_merge(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.bump("x", 1)
        b.bump("x", 2)
        b.bump("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_uniform(self):
        assert harmonic_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1,
                    max_size=20))
    def test_bounded_by_min_and_max(self, values):
        mean = harmonic_mean(values)
        assert min(values) <= mean * (1 + 1e-9)
        assert mean <= max(values) * (1 + 1e-9)

    def test_percent_improvement(self):
        speedups = {"a": 1.5, "b": 1.5}
        assert percent_improvement(speedups) == pytest.approx(50.0)
