"""SM tests: warps, GTO scheduling, CTAs, coalescing and the core."""

import pytest

from repro.config.presets import small_config
from repro.sim.request import AccessKind
from repro.sm.coalescer import coalesce, coalescing_degree
from repro.sm.cta import CTA, DistributedCTAScheduler
from repro.sm.scheduler import GTOScheduler
from repro.sm.warp import Compute, MemAccess, Warp, make_stream


def _warp(instructions, warp_id=0, cta_id=0):
    return Warp(warp_id, cta_id, make_stream(instructions))


class TestWarp:
    def test_executes_stream(self):
        warp = _warp([Compute(2), Compute(1)])
        assert warp.next_instruction() == Compute(2)
        assert warp.next_instruction() == Compute(1)
        assert warp.next_instruction() is None
        assert warp.done

    def test_blocks_on_loads(self):
        warp = _warp([])
        warp.block_on_loads(2)
        assert not warp.is_ready(0)
        warp.load_returned()
        warp.load_returned()
        assert warp.is_ready(0)

    def test_load_return_underflow_raises(self):
        with pytest.raises(RuntimeError):
            _warp([]).load_returned()

    def test_ready_respects_ready_at(self):
        warp = _warp([Compute(1)])
        warp.ready_at = 10
        assert not warp.is_ready(9)
        assert warp.is_ready(10)

    def test_stalled_instruction_replayed(self):
        access = MemAccess(AccessKind.LOAD, ((0, 0),))
        warp = _warp([access, Compute(1)])
        assert warp.next_instruction() is access
        warp.stalled_instr = access  # SM could not issue it
        assert warp.next_instruction() is access  # replayed
        assert warp.next_instruction() == Compute(1)

    def test_finished_needs_drained_loads(self):
        warp = _warp([])
        warp.block_on_loads(1)
        warp.next_instruction()
        assert warp.done and not warp.finished
        warp.load_returned()
        assert warp.finished


class TestGTOScheduler:
    def test_greedy_sticks_to_same_warp(self):
        sched = GTOScheduler()
        a = _warp([Compute(1)] * 5, warp_id=0)
        b = _warp([Compute(1)] * 5, warp_id=1)
        sched.add_warp(a)
        sched.add_warp(b)
        assert sched.pick(0) is a
        assert sched.pick(1) is a  # greedy

    def test_falls_back_to_oldest_on_stall(self):
        sched = GTOScheduler()
        a = _warp([Compute(1)], warp_id=0)
        b = _warp([Compute(1)], warp_id=1)
        sched.add_warp(a)
        sched.add_warp(b)
        assert sched.pick(0) is a
        a.block_on_loads(1)
        sched.notify_stall(a)
        assert sched.pick(1) is b

    def test_oldest_ready_preferred(self):
        sched = GTOScheduler()
        a = _warp([Compute(1)], warp_id=0)
        b = _warp([Compute(1)], warp_id=1)
        sched.add_warp(a)
        sched.add_warp(b)
        a.ready_at = 100
        assert sched.pick(0) is b
        # When a becomes ready it is oldest, but greedy prefers b first.
        assert sched.pick(100) is b

    def test_none_when_all_stalled(self):
        sched = GTOScheduler()
        a = _warp([Compute(1)])
        sched.add_warp(a)
        a.block_on_loads(1)
        assert sched.pick(0) is None
        assert sched.idle_cycles == 1

    def test_remove_warp(self):
        sched = GTOScheduler()
        a = _warp([Compute(1)])
        sched.add_warp(a)
        sched.pick(0)
        sched.remove_warp(a)
        assert sched.pick(1) is None


class TestDistributedCTAScheduler:
    def _factory(self, cta_id, warp_id):
        return make_stream([Compute(1)])

    def test_contiguous_chunks(self):
        sched = DistributedCTAScheduler(8, num_sms=4, warps_per_cta=2,
                                        warp_factory=self._factory)
        # SM 0 must receive CTAs 0 and 1 (contiguous, locality).
        first = sched.next_cta(0)
        second = sched.next_cta(0)
        assert (first.cta_id, second.cta_id) == (0, 1)
        assert sched.next_cta(0) is None

    def test_uneven_division(self):
        sched = DistributedCTAScheduler(5, num_sms=4, warps_per_cta=1,
                                        warp_factory=self._factory)
        counts = [sched.remaining(sm) for sm in range(4)]
        assert sorted(counts) == [1, 1, 1, 2]
        assert sched.total_remaining == 5

    def test_warps_created_per_cta(self):
        sched = DistributedCTAScheduler(2, num_sms=2, warps_per_cta=3,
                                        warp_factory=self._factory)
        cta = sched.next_cta(0)
        assert len(cta.warps) == 3
        assert all(w.cta_id == cta.cta_id for w in cta.warps)

    def test_cta_finished(self):
        sched = DistributedCTAScheduler(1, num_sms=1, warps_per_cta=1,
                                        warp_factory=self._factory)
        cta = sched.next_cta(0)
        assert not cta.finished
        warp = cta.warps[0]
        warp.next_instruction()
        warp.next_instruction()
        assert cta.finished

    def test_needs_ctas(self):
        with pytest.raises(ValueError):
            DistributedCTAScheduler(0, 1, 1, self._factory)


class TestCoalescer:
    def test_same_line_coalesces_to_one(self):
        addrs = [i * 4 for i in range(32)]  # 128 consecutive bytes
        assert coalesce(addrs) == [(0, 0)]
        assert coalescing_degree(addrs) == 32.0

    def test_strided_accesses_split(self):
        addrs = [i * 128 for i in range(4)]
        targets = coalesce(addrs)
        assert targets == [(0, 0), (0, 1), (0, 2), (0, 3)]

    def test_page_crossing(self):
        targets = coalesce([4095, 4096])
        assert targets == [(0, 31), (1, 0)]

    def test_empty(self):
        assert coalesce([]) == []
        assert coalescing_degree([]) == 0.0


class TestBarriers:
    def _sm_with_two_warps(self):
        """A real SMCore with one CTA of two warps executing barriers."""
        from repro.cache.l1 import L1Cache
        from repro.config.presets import small_config
        from repro.sm.core import SMCore
        from repro.sm.cta import DistributedCTAScheduler
        from repro.sm.warp import Barrier
        from repro.vm.tlb import MMU, L2TLB, TranslationProvider
        from repro.vm.walker import WalkerPool

        gpu = small_config(num_channels=2, warps_per_sm=4)

        class Driver(TranslationProvider):
            def lookup_translation(self, vpage, sm_id):
                return vpage

            def handle_fault(self, vpage, sm_id):
                return vpage

        driver = Driver()
        l2 = L2TLB(gpu.tlb.l2_entries, gpu.tlb.l2_ways, gpu.tlb.l2_latency)
        walkers = WalkerPool(4, 10)
        l1 = L1Cache(0, gpu.l1)
        mmu = MMU(0, gpu.tlb, l2, walkers, driver)
        sm = SMCore(0, gpu, l1, mmu, request_sink=lambda r: True)

        def body(cta, warp):
            yield Compute(1)
            yield Barrier()
            yield Compute(1)

        sched = DistributedCTAScheduler(1, 1, 2, body)
        sm.start_kernel(sched, set(), now=0)
        return sm

    def test_warp_blocks_until_cta_arrives(self):
        sm = self._sm_with_two_warps()
        for cycle in range(50):
            sm.tick(cycle)
        # Both warps passed the barrier and finished their streams.
        assert sm.barriers_completed == 1
        assert all(
            warp.finished
            for cta in sm._active_ctas for warp in cta.warps
        ) or not sm._active_ctas

    def test_barrier_flushes_l1(self):
        sm = self._sm_with_two_warps()
        flushes_before = sm.l1.flushes
        for cycle in range(50):
            sm.tick(cycle)
        assert sm.l1.flushes > flushes_before

    def test_warp_at_barrier_not_ready(self):
        warp = _warp([])
        warp.at_barrier = True
        assert not warp.is_ready(0)
        warp.at_barrier = False
        assert warp.is_ready(0)
