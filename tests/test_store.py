"""Result-store tests (JSON persistence + runner integration)."""

import json

import pytest

from repro.config.presets import small_config
from repro.config.topology import Architecture, ReplicationPolicy
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.experiments.store import (
    ResultConflictError,
    ResultStore,
    key_fingerprint,
    result_from_dict,
    result_to_dict,
)


@pytest.fixture
def runner():
    return ExperimentRunner(base_gpu=small_config(num_channels=2,
                                                  warps_per_sm=4))


class TestFingerprint:
    def test_stable(self):
        assert key_fingerprint(RunKey("AN")) == key_fingerprint(RunKey("AN"))

    def test_distinguishes_configs(self):
        a = key_fingerprint(RunKey("AN"))
        b = key_fingerprint(RunKey("AN", Architecture.NUBA))
        c = key_fingerprint(RunKey("AN", noc_gbps=100.0))
        assert len({a, b, c}) == 3

    def test_filename_safe(self):
        fp = key_fingerprint(RunKey("2MM", Architecture.NUBA))
        assert "/" not in fp and " " not in fp

    def test_distinguishes_runner_settings(self):
        # mdr_epoch and max_cycles change results, so they must change
        # the fingerprint too.
        key = RunKey("AN")
        a = key_fingerprint(key, {"mdr_epoch": 2000,
                                  "max_cycles": 3_000_000})
        b = key_fingerprint(key, {"mdr_epoch": 500,
                                  "max_cycles": 3_000_000})
        c = key_fingerprint(key, {"mdr_epoch": 2000,
                                  "max_cycles": 1_000_000})
        d = key_fingerprint(key)
        assert len({a, b, c, d}) == 4

    def test_settings_order_irrelevant(self):
        key = RunKey("AN")
        a = key_fingerprint(key, {"mdr_epoch": 1, "max_cycles": 2})
        b = key_fingerprint(key, {"max_cycles": 2, "mdr_epoch": 1})
        assert a == b


class TestSerialization:
    def test_round_trip(self, runner):
        result = runner.run(RunKey("KMEANS"))
        data = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(data)
        assert restored.cycles == result.cycles
        assert restored.energy.total == pytest.approx(result.energy.total)
        assert restored.tracker == result.tracker

    def test_schema_mismatch_rejected(self, runner):
        result = runner.run(RunKey("KMEANS"))
        data = result_to_dict(result)
        data["_schema"] = -1
        assert result_from_dict(data) is None


class TestStore:
    def test_save_and_load(self, runner, tmp_path):
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        result = runner.run(key)
        store.save(key, result)
        assert len(store) == 1
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.cycles == result.cycles

    def test_miss_on_unknown_key(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load(RunKey("AN")) is None
        assert store.misses == 1

    def test_corrupt_file_treated_as_miss(self, runner, tmp_path):
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        store.save(key, runner.run(key))
        next(tmp_path.glob("*.json")).write_text("{not json")
        assert store.load(key) is None

    def test_clear(self, runner, tmp_path):
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        store.save(key, runner.run(key))
        store.clear()
        assert len(store) == 0

    def test_attach_avoids_resimulation(self, tmp_path):
        gpu = small_config(num_channels=2, warps_per_sm=4)
        key = RunKey("KMEANS", Architecture.NUBA,
                     replication=ReplicationPolicy.NONE)

        first = ExperimentRunner(base_gpu=gpu)
        store = ResultStore(tmp_path)
        store.attach(first)
        first.run(key)
        assert first.simulations_run == 1

        second = ExperimentRunner(base_gpu=gpu)
        store.attach(second)
        result = second.run(key)
        assert second.simulations_run == 0  # loaded from disk
        assert result.cycles > 0
        assert store.hits >= 1

    def test_save_leaves_no_temp_files(self, runner, tmp_path):
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        store.save(key, runner.run(key))
        store.save(key, runner.run(key))  # overwrite is atomic too
        assert len(list(tmp_path.glob("*.tmp"))) == 0
        assert len(store) == 1

    def test_truncated_entry_is_a_miss_then_healed(self, runner,
                                                   tmp_path):
        # A sweep killed mid-write used to leave a truncated JSON that
        # counted as a permanent miss; now corrupt entries are dropped
        # and the next save replaces them.
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        result = runner.run(key)
        store.save(key, result)
        path = next(tmp_path.glob("*.json"))
        path.write_text(path.read_text()[:20])  # simulate a cut write
        assert store.load(key) is None
        assert not path.exists()  # corrupt entry dropped
        store.save(key, result)
        assert store.load(key).cycles == result.cycles


class TestRunnerStoreIntegration:
    def test_constructor_store(self, tmp_path):
        gpu = small_config(num_channels=2, warps_per_sm=4)
        key = RunKey("KMEANS")
        first = ExperimentRunner(base_gpu=gpu,
                                 store=ResultStore(tmp_path))
        first.run(key)
        assert first.simulations_run == 1

        second = ExperimentRunner(base_gpu=gpu,
                                  store=ResultStore(tmp_path))
        result = second.run(key)
        assert second.simulations_run == 0
        assert result.cycles > 0

    def test_different_settings_not_shared(self, tmp_path):
        gpu = small_config(num_channels=2, warps_per_sm=4)
        key = RunKey("KMEANS", Architecture.NUBA,
                     replication=ReplicationPolicy.MDR)
        first = ExperimentRunner(base_gpu=gpu, mdr_epoch=2000,
                                 store=ResultStore(tmp_path))
        first.run(key)

        other = ExperimentRunner(base_gpu=gpu, mdr_epoch=500,
                                 store=ResultStore(tmp_path))
        other.run(key)
        assert other.simulations_run == 1  # no stale sharing

    def test_run_system_publishes_to_store(self, tmp_path):
        gpu = small_config(num_channels=2, warps_per_sm=4)
        key = RunKey("KMEANS")
        first = ExperimentRunner(base_gpu=gpu,
                                 store=ResultStore(tmp_path))
        system, result = first.run_system(key)
        assert first.simulations_run == 1
        # The RunResult half went through the cache path: run() hits.
        assert first.run(key) is not None
        assert first.simulations_run == 1
        # ...and so does a fresh runner on the same store.
        second = ExperimentRunner(base_gpu=gpu,
                                  store=ResultStore(tmp_path))
        assert second.run(key).cycles == result.cycles
        assert second.simulations_run == 0

    def test_run_system_repeated_uses_system_cache(self):
        gpu = small_config(num_channels=2, warps_per_sm=4)
        runner = ExperimentRunner(base_gpu=gpu)
        key = RunKey("KMEANS")
        system_a, _ = runner.run_system(key)
        system_b, _ = runner.run_system(key)
        assert system_a is system_b
        assert runner.simulations_run == 1


class TestConflicts:
    """Concurrent-writer semantics: equality, not last-writer-wins.

    Distributed sweeps make double-publishes routine (two shards into
    one store over NFS, a worker and the coordinator racing on the same
    point), so ``save`` must be an idempotent no-op for identical
    payloads and a hard error for divergent ones.
    """

    def test_identical_resave_is_noop(self, runner, tmp_path):
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        result = runner.run(key)
        store.save(key, result)
        before = next(tmp_path.glob("*.json")).stat().st_mtime_ns
        store.save(key, result)  # concurrent identical writer
        assert len(store) == 1
        assert next(tmp_path.glob("*.json")).stat().st_mtime_ns \
            == before  # no rewrite at all

    def test_divergent_resave_raises_and_preserves(self, runner,
                                                   tmp_path):
        import dataclasses
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        result = runner.run(key)
        store.save(key, result)
        divergent = dataclasses.replace(result,
                                        cycles=result.cycles + 1)
        with pytest.raises(ResultConflictError) as excinfo:
            store.save(key, divergent)
        assert excinfo.value.path.exists()
        # The first writer's entry survives untouched.
        assert store.load(key).cycles == result.cycles

    def test_corrupt_entry_is_overwritten(self, runner, tmp_path):
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        result = runner.run(key)
        store.save(key, result)
        path = next(tmp_path.glob("*.json"))
        path.write_text("{not json")
        store.save(key, result)  # heals, no conflict
        assert store.load(key).cycles == result.cycles

    def test_stale_schema_entry_is_overwritten(self, runner, tmp_path):
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        result = runner.run(key)
        store.save(key, result)
        path = next(tmp_path.glob("*.json"))
        stale = json.loads(path.read_text())
        stale["_schema"] = -1
        path.write_text(json.dumps(stale))
        store.save(key, result)  # old schema never conflicts
        assert store.load(key).cycles == result.cycles


class TestMaintenance:
    """stats/gc/sweep_tmp: the service-era upkeep surface."""

    def _seed(self, runner, tmp_path, *benches):
        store = ResultStore(tmp_path)
        for bench in benches:
            key = RunKey(bench)
            store.save(key, runner.run(key))
        return store

    def test_stats_counts_entries_and_bytes(self, runner, tmp_path):
        store = self._seed(runner, tmp_path, "KMEANS", "AN")
        store.load(RunKey("KMEANS"))
        store.load(RunKey("HISTO"))  # miss
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0

    def test_gc_ttl_evicts_only_old_entries(self, runner, tmp_path):
        import os
        import time as _time
        store = self._seed(runner, tmp_path, "KMEANS", "AN")
        old = _time.time() - 7200
        victim = next(tmp_path.glob("KMEANS*.json"))
        os.utime(victim, (old, old))
        outcome = store.gc(max_age_seconds=3600)
        assert outcome["evicted"] == 1
        assert outcome["entries"] == 1
        assert not victim.exists()
        assert store.evictions == 1
        assert store.load(RunKey("AN")) is not None

    def test_gc_lru_bound_keeps_recently_used(self, runner, tmp_path):
        import os
        import time as _time
        store = self._seed(runner, tmp_path, "KMEANS", "AN", "2MM")
        # Age all entries, then touch KMEANS through a load hit -- the
        # hit must bump its mtime so LRU eviction spares it.
        base = _time.time() - 1000
        for index, path in enumerate(sorted(tmp_path.glob("*.json"))):
            os.utime(path, (base + index, base + index))
        assert store.load(RunKey("KMEANS")) is not None
        outcome = store.gc(max_entries=1)
        assert outcome["evicted"] == 2
        assert store.load(RunKey("KMEANS")) is not None
        assert len(store) == 1

    def test_entries_lists_lru_first(self, runner, tmp_path):
        import os
        import time as _time
        store = self._seed(runner, tmp_path, "KMEANS", "AN")
        old = _time.time() - 500
        target = next(tmp_path.glob("AN*.json"))
        os.utime(target, (old, old))
        listing = store.entries()
        assert [len(listing), listing[0]["name"].startswith("AN")] \
            == [2, True]
        assert listing[0]["idle_seconds"] > listing[1]["idle_seconds"]

    def test_stale_tmp_swept_on_open(self, tmp_path):
        import os
        import time as _time
        stale = tmp_path / "KMEANS_x.deadbeef.tmp"
        stale.write_text('{"partial":')
        old = _time.time() - 3600
        os.utime(stale, (old, old))
        fresh = tmp_path / "AN_x.cafe.tmp"
        fresh.write_text('{"writing":')
        ResultStore(tmp_path)  # open sweeps stale temporaries
        assert not stale.exists()
        assert fresh.exists()  # inside the grace period: a live write

    def test_gc_sweeps_stale_tmp(self, tmp_path):
        import os
        import time as _time
        store = ResultStore(tmp_path)
        stale = tmp_path / "KMEANS_x.beef.tmp"
        stale.write_text("{")
        old = _time.time() - 3600
        os.utime(stale, (old, old))
        outcome = store.gc()
        assert outcome["tmp_swept"] == 1
        assert not stale.exists()

    def test_clear_sweeps_tmp_regardless_of_age(self, tmp_path):
        store = ResultStore(tmp_path)
        fresh = tmp_path / "AN_x.cafe.tmp"
        fresh.write_text("{")
        store.clear()
        assert not fresh.exists()

    def test_load_hit_bumps_mtime(self, runner, tmp_path):
        import os
        import time as _time
        store = self._seed(runner, tmp_path, "KMEANS")
        path = next(tmp_path.glob("*.json"))
        old = _time.time() - 900
        os.utime(path, (old, old))
        assert store.load(RunKey("KMEANS")) is not None
        assert _time.time() - path.stat().st_mtime < 60
