"""Result-store tests (JSON persistence + runner integration)."""

import json

import pytest

from repro.config.presets import small_config
from repro.config.topology import Architecture, ReplicationPolicy
from repro.experiments.runner import ExperimentRunner, RunKey
from repro.experiments.store import (
    ResultStore,
    key_fingerprint,
    result_from_dict,
    result_to_dict,
)


@pytest.fixture
def runner():
    return ExperimentRunner(base_gpu=small_config(num_channels=2,
                                                  warps_per_sm=4))


class TestFingerprint:
    def test_stable(self):
        assert key_fingerprint(RunKey("AN")) == key_fingerprint(RunKey("AN"))

    def test_distinguishes_configs(self):
        a = key_fingerprint(RunKey("AN"))
        b = key_fingerprint(RunKey("AN", Architecture.NUBA))
        c = key_fingerprint(RunKey("AN", noc_gbps=100.0))
        assert len({a, b, c}) == 3

    def test_filename_safe(self):
        fp = key_fingerprint(RunKey("2MM", Architecture.NUBA))
        assert "/" not in fp and " " not in fp


class TestSerialization:
    def test_round_trip(self, runner):
        result = runner.run(RunKey("KMEANS"))
        data = json.loads(json.dumps(result_to_dict(result)))
        restored = result_from_dict(data)
        assert restored.cycles == result.cycles
        assert restored.energy.total == pytest.approx(result.energy.total)
        assert restored.tracker == result.tracker

    def test_schema_mismatch_rejected(self, runner):
        result = runner.run(RunKey("KMEANS"))
        data = result_to_dict(result)
        data["_schema"] = -1
        assert result_from_dict(data) is None


class TestStore:
    def test_save_and_load(self, runner, tmp_path):
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        result = runner.run(key)
        store.save(key, result)
        assert len(store) == 1
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.cycles == result.cycles

    def test_miss_on_unknown_key(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load(RunKey("AN")) is None
        assert store.misses == 1

    def test_corrupt_file_treated_as_miss(self, runner, tmp_path):
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        store.save(key, runner.run(key))
        next(tmp_path.glob("*.json")).write_text("{not json")
        assert store.load(key) is None

    def test_clear(self, runner, tmp_path):
        store = ResultStore(tmp_path)
        key = RunKey("KMEANS")
        store.save(key, runner.run(key))
        store.clear()
        assert len(store) == 0

    def test_attach_avoids_resimulation(self, tmp_path):
        gpu = small_config(num_channels=2, warps_per_sm=4)
        key = RunKey("KMEANS", Architecture.NUBA,
                     replication=ReplicationPolicy.NONE)

        first = ExperimentRunner(base_gpu=gpu)
        store = ResultStore(tmp_path)
        store.attach(first)
        first.run(key)
        assert first.simulations_run == 1

        second = ExperimentRunner(base_gpu=gpu)
        store.attach(second)
        result = second.run(key)
        assert second.simulations_run == 0  # loaded from disk
        assert result.cycles > 0
        assert store.hits >= 1
