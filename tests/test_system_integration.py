"""End-to-end system tests on a tiny configuration.

These run complete workloads through every architecture and check
system-level invariants: all work retires, requests are conserved, the
architectural properties hold (locality under NUBA, replication effects),
and kernel-boundary coherence actions happen.
"""

import pytest

from repro.config.presets import small_config
from repro.config.topology import (
    Architecture,
    PagePolicy,
    ReplicationPolicy,
    TopologySpec,
)
from repro.core.builders import build_system
from repro.workloads.suite import get_benchmark

#: A tiny GPU so each test runs in well under a second.
GPU = small_config(num_channels=4, warps_per_sm=4)


def _run(arch, bench="KMEANS", replication=ReplicationPolicy.NONE,
         page_policy=PagePolicy.LAB, gpu=GPU):
    topo = TopologySpec(
        architecture=arch, replication=replication,
        page_policy=page_policy, mdr_epoch=1000,
    )
    system = build_system(gpu, topo)
    workload = get_benchmark(bench).instantiate(gpu)
    result = system.run_workload(workload, max_cycles=2_000_000)
    return system, result


class TestAllArchitecturesComplete:
    @pytest.mark.parametrize("arch", list(Architecture))
    def test_kmeans_completes(self, arch):
        system, result = _run(arch)
        assert result.cycles > 0
        assert result.instructions > 0
        assert result.loads_completed > 0

    @pytest.mark.parametrize("arch", list(Architecture))
    def test_high_sharing_completes(self, arch):
        _, result = _run(arch, bench="AN")
        assert result.loads_completed > 0


class TestInvariants:
    def test_work_conservation_across_architectures(self):
        """Every architecture must execute the same instruction stream."""
        instruction_counts = {
            arch: _run(arch)[1].instructions for arch in Architecture
        }
        assert len(set(instruction_counts.values())) == 1

    def test_drained_at_completion(self):
        system, _ = _run(Architecture.NUBA)
        assert system._drained()
        for llc_slice in system.slices:
            assert llc_slice.pending_work == 0
        for mc in system.mcs:
            assert mc.pending == 0

    def test_local_plus_remote_equals_completed(self):
        _, result = _run(Architecture.NUBA)
        tracker = result.tracker
        assert tracker["local"] + tracker["remote"] == tracker["completed"]

    def test_uba_never_local(self):
        _, result = _run(Architecture.MEM_SIDE_UBA)
        assert result.local_fraction == 0.0

    def test_nuba_mostly_local_for_low_sharing(self):
        _, result = _run(Architecture.NUBA, bench="DWT2D")
        assert result.local_fraction > 0.5

    def test_nuba_low_locality_for_high_sharing_no_rep(self):
        _, result = _run(Architecture.NUBA, bench="BICG")
        assert result.local_fraction < 0.5

    def test_replication_raises_locality(self):
        _, norep = _run(Architecture.NUBA, bench="AN",
                        replication=ReplicationPolicy.NONE)
        _, full = _run(Architecture.NUBA, bench="AN",
                       replication=ReplicationPolicy.FULL)
        assert full.local_fraction > norep.local_fraction

    def test_kernel_boundary_flushes_l1(self):
        system, _ = _run(Architecture.NUBA)
        assert all(sm.l1.flushes >= 1 for sm in system.sms)

    def test_energy_positive_and_split(self):
        _, result = _run(Architecture.MEM_SIDE_UBA)
        assert result.energy.total > 0
        assert result.energy.noc > 0

    def test_pages_balanced_under_lab(self):
        system, result = _run(Architecture.NUBA, bench="BICG")
        counts = result.pages_per_channel
        assert max(counts) - min(counts) <= 40

    def test_first_touch_worse_than_lab_for_high_sharing(self):
        """The Section 4 pathology: first-touch concentrates shared pages
        (early SMs fault them first) and loses to LAB on high-sharing
        workloads. Needs the full 8-channel scaled GPU -- with very few
        channels the skew has nowhere to go."""
        gpu = small_config()
        _, ft = _run(Architecture.NUBA, bench="BICG",
                     page_policy=PagePolicy.FIRST_TOUCH, gpu=gpu)
        _, lab = _run(Architecture.NUBA, bench="BICG",
                      page_policy=PagePolicy.LAB, gpu=gpu)
        assert lab.speedup_over(ft) > 1.1


class TestPolicyEffects:
    def test_mdr_decisions_recorded(self):
        system, _ = _run(Architecture.NUBA, bench="AN",
                         replication=ReplicationPolicy.MDR)
        assert system.mdr.decisions  # at least one epoch evaluated

    def test_migration_policy_runs(self):
        system, result = _run(Architecture.NUBA, bench="DWT2D",
                              page_policy=PagePolicy.MIGRATION)
        assert system.migration is not None
        assert result.loads_completed > 0

    def test_page_replication_policy_runs(self):
        system, result = _run(Architecture.NUBA, bench="AN",
                              page_policy=PagePolicy.PAGE_REPLICATION)
        assert result.loads_completed > 0

    def test_sm_side_coherence_invalidations(self):
        """Stores to lines cached on the other side must invalidate."""
        system, _ = _run(Architecture.SM_SIDE_UBA, bench="NW")
        # NW stores to a shared-ish output; invalidations may or may not
        # trigger depending on caching, but the machinery must exist.
        assert hasattr(system, "invalidations_sent")

    def test_speedup_over_self_is_one(self):
        _, a = _run(Architecture.MEM_SIDE_UBA)
        assert a.speedup_over(a) == pytest.approx(1.0)


class TestSharingAnalysis:
    def test_low_sharing_classified(self):
        system, _ = _run(Architecture.MEM_SIDE_UBA, bench="DWT2D")
        from repro.analysis.sharing import sharing_profile
        profile = sharing_profile(
            "DWT2D", system.sharing_histogram(), system.gpu.num_sms
        )
        assert profile.classify() == "low"

    def test_high_sharing_classified(self):
        system, _ = _run(Architecture.MEM_SIDE_UBA, bench="AN")
        from repro.analysis.sharing import sharing_profile
        profile = sharing_profile(
            "AN", system.sharing_histogram(), system.gpu.num_sms
        )
        assert profile.classify() == "high"


class TestConservationAudit:
    """Every issued load completes exactly once, on every architecture
    and replication policy (the audit that catches lost/misrouted or
    double-completed requests)."""

    @pytest.mark.parametrize("arch", list(Architecture))
    def test_audit_clean_no_rep(self, arch):
        system, _ = _run(arch, bench="AN")
        assert system.audit() == []

    @pytest.mark.parametrize("rep", [ReplicationPolicy.MDR,
                                     ReplicationPolicy.FULL])
    def test_audit_clean_with_replication(self, rep):
        system, _ = _run(Architecture.NUBA, bench="AN", replication=rep)
        assert system.audit() == []

    def test_audit_clean_with_atomics(self):
        system, _ = _run(Architecture.NUBA, bench="PVC",
                         replication=ReplicationPolicy.MDR)
        assert system.audit() == []

    def test_audit_clean_multi_kernel(self):
        system, _ = _run(Architecture.NUBA, bench="KMEANS",
                         replication=ReplicationPolicy.FULL)
        assert system.audit() == []

    def test_audit_detects_injected_imbalance(self):
        system, _ = _run(Architecture.NUBA)
        system.sms[0].loads_issued += 1  # simulate a lost request
        problems = system.audit()
        assert problems and "sm0" in problems[0]


@pytest.mark.skipif(
    not __import__("os").environ.get("REPRO_SLOW"),
    reason="full Table 1 machine (~20s); set REPRO_SLOW=1 to run",
)
class TestFullScaleBaseline:
    """The unscaled 64-SM / 64-slice / 32-channel Table 1 machine runs
    end to end with conserved requests (opt-in, slower)."""

    def test_table1_machine_runs_and_audits_clean(self):
        from dataclasses import replace
        from repro.config.gpu import TLBConfig
        from repro.config.presets import baseline_config

        gpu = replace(
            baseline_config(),
            tlb=TLBConfig(walk_latency=40, page_fault_cycles=300),
        )
        results = {}
        for arch in (Architecture.MEM_SIDE_UBA, Architecture.NUBA):
            topo = TopologySpec(architecture=arch, mdr_epoch=2000)
            system = build_system(gpu, topo)
            workload = get_benchmark("KMEANS").instantiate(gpu)
            results[arch] = system.run_workload(
                workload, max_cycles=5_000_000
            )
            assert system.audit() == []
        nuba = results[Architecture.NUBA]
        assert nuba.local_fraction > 0.5
