"""Timeline recorder tests."""

import pytest

from repro.analysis.timeline import TimelineRecorder, TimelineSample
from repro.config.presets import small_config
from repro.config.topology import Architecture, ReplicationPolicy, TopologySpec
from repro.core.builders import build_system
from repro.workloads.suite import get_benchmark


@pytest.fixture(scope="module")
def recorded():
    gpu = small_config(num_channels=4, warps_per_sm=4)
    topo = TopologySpec(architecture=Architecture.NUBA,
                        replication=ReplicationPolicy.MDR, mdr_epoch=500)
    system = build_system(gpu, topo)
    recorder = TimelineRecorder.attach(system, interval=500)
    result = system.run_workload(get_benchmark("AN").instantiate(gpu))
    return system, recorder, result


class TestRecorder:
    def test_samples_collected(self, recorded):
        _, recorder, result = recorded
        assert len(recorder) >= result.cycles // recorder.interval - 1

    def test_deltas_sum_to_totals(self, recorded):
        """Interval deltas must add up to the run's final counters
        (conservation check across the whole instrumentation)."""
        system, recorder, result = recorded
        sampled_replies = sum(s.replies for s in recorder.samples)
        # The final partial interval may be unsampled.
        assert sampled_replies <= result.loads_completed
        assert sampled_replies >= result.loads_completed * 0.8

        sampled_local = sum(s.local for s in recorder.samples)
        assert sampled_local <= system.tracker.local

    def test_samples_monotone_cycles(self, recorded):
        _, recorder, _ = recorded
        cycles = [s.cycle for s in recorder.samples]
        assert cycles == sorted(cycles)

    def test_mdr_state_recorded(self, recorded):
        """AN replicates under MDR: some samples must show it on."""
        _, recorder, _ = recorded
        assert any(s.mdr_replicating for s in recorder.samples)

    def test_replication_windows(self, recorded):
        _, recorder, _ = recorded
        windows = recorder.replication_windows()
        assert windows
        for start, end in windows:
            assert end >= start

    def test_peak_bandwidth_positive(self, recorded):
        _, recorder, _ = recorded
        assert recorder.peak_bandwidth() > 0

    def test_csv_export(self, recorded):
        _, recorder, _ = recorded
        csv_text = recorder.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("cycle,replies,local")
        assert len(lines) == len(recorder) + 1
        # Every row has the full field count.
        width = len(TimelineRecorder.FIELDS)
        assert all(len(line.split(",")) == width for line in lines)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TimelineRecorder(object(), interval=0)


class TestSampleProperties:
    def test_local_fraction(self):
        sample = TimelineSample(
            cycle=100, replies=10, local=6, remote=4, noc_bytes=0,
            dram_lines=0, llc_hits=5, llc_accesses=10,
            mdr_replicating=False,
        )
        assert sample.local_fraction == pytest.approx(0.6)
        assert sample.llc_hit_rate == pytest.approx(0.5)

    def test_zero_division_guards(self):
        sample = TimelineSample(
            cycle=0, replies=0, local=0, remote=0, noc_bytes=0,
            dram_lines=0, llc_hits=0, llc_accesses=0,
            mdr_replicating=False,
        )
        assert sample.local_fraction == 0.0
        assert sample.llc_hit_rate == 0.0
