"""Trace record/replay tests."""

import io

import pytest

from repro.config.presets import small_config
from repro.config.topology import Architecture, ReplicationPolicy, TopologySpec
from repro.core.builders import build_system
from repro.sim.request import AccessKind
from repro.sm.warp import Barrier, Compute, MemAccess
from repro.workloads.suite import get_benchmark
from repro.workloads.trace import (
    TraceWorkload,
    _format_instruction,
    _parse_instruction,
    record_trace,
    round_trip,
)

GPU = small_config(num_channels=2, warps_per_sm=4)


class TestInstructionCodec:
    @pytest.mark.parametrize("instr", [
        Compute(3),
        Barrier(),
        MemAccess(AccessKind.LOAD, ((5, 7), (5, 8)), space="data"),
        MemAccess(AccessKind.STORE, ((0, 0),), space="out"),
        MemAccess(AccessKind.ATOMIC, ((2, 31),), space="counters"),
        MemAccess(AccessKind.LOAD_RO, ((9, 1),), space="weights"),
    ])
    def test_round_trip(self, instr):
        assert _parse_instruction(_format_instruction(instr)) == instr

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            _parse_instruction("xyz")


class TestRecordReplay:
    def test_trace_preserves_streams(self):
        workload = get_benchmark("AN").instantiate(GPU)
        replayed = round_trip(workload)
        original = workload.compiled_kernels()
        traced = replayed.compiled_kernels()
        assert len(original) == len(traced)
        for orig, trace in zip(original, traced):
            assert orig.num_ctas == trace.num_ctas
            assert orig.read_only_spaces == trace.read_only_spaces
            assert list(orig.warp_factory(0, 0)) == list(
                trace.warp_factory(0, 0)
            )
            assert list(orig.warp_factory(3, 1)) == list(
                trace.warp_factory(3, 1)
            )

    def test_replay_simulates_identically(self):
        """The trace is a faithful stand-in: same cycles, same stats."""
        bench = get_benchmark("KMEANS")
        topo = TopologySpec(architecture=Architecture.NUBA,
                            replication=ReplicationPolicy.MDR,
                            mdr_epoch=1000)
        original = build_system(GPU, topo).run_workload(
            bench.instantiate(GPU)
        )
        replayed_workload = round_trip(bench.instantiate(GPU))
        replayed = build_system(GPU, topo).run_workload(replayed_workload)
        assert replayed.cycles == original.cycles
        assert replayed.loads_completed == original.loads_completed
        assert replayed.local_fraction == original.local_fraction

    def test_file_round_trip(self, tmp_path):
        workload = get_benchmark("PVC").instantiate(GPU)
        path = tmp_path / "pvc.trace"
        lines = record_trace(workload, str(path))
        assert lines > 0
        replayed = TraceWorkload.load(str(path))
        assert replayed.name.endswith("Page View Count")
        result = build_system(
            GPU, TopologySpec(architecture=Architecture.NUBA)
        ).run_workload(replayed)
        assert result.loads_completed > 0

    def test_barriers_survive(self):
        workload = get_benchmark("NW").instantiate(GPU)
        replayed = round_trip(workload)
        stream = list(replayed.compiled_kernels()[0].warp_factory(0, 0))
        assert any(isinstance(i, Barrier) for i in stream)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceWorkload.load(io.StringIO(""))

    def test_body_before_header_rejected(self):
        with pytest.raises(ValueError):
            TraceWorkload.load(io.StringIO("c 1\n"))
