"""Virtual-memory tests: page table, TLBs, walkers and the MMU."""

import pytest

from repro.config.gpu import TLBConfig
from repro.vm.page_table import PageTable
from repro.vm.tlb import L1TLB, L2TLB, MMU, TranslationProvider
from repro.vm.walker import WalkerPool


class TestPageTable:
    def test_install_and_lookup(self):
        pt = PageTable()
        pt.install(5, 100)
        assert pt.lookup(5) == 100
        assert pt.lookup(6) is None
        assert 5 in pt and len(pt) == 1

    def test_double_install_rejected(self):
        pt = PageTable()
        pt.install(1, 10)
        with pytest.raises(KeyError):
            pt.install(1, 11)

    def test_remap_bumps_generation(self):
        pt = PageTable()
        pt.install(1, 10)
        generation = pt.generation
        pt.remap(1, 20)
        assert pt.lookup(1) == 20
        assert pt.generation == generation + 1
        assert pt.remaps == 1

    def test_remap_unmapped_rejected(self):
        with pytest.raises(KeyError):
            PageTable().remap(1, 10)


class TestL1TLB:
    def test_hit_after_fill(self):
        tlb = L1TLB(4)
        assert tlb.lookup(1) == (False, -1)
        tlb.fill(1, 10)
        assert tlb.lookup(1) == (True, 10)

    def test_lru_eviction(self):
        tlb = L1TLB(2)
        tlb.fill(1, 10)
        tlb.fill(2, 20)
        tlb.lookup(1)
        tlb.fill(3, 30)  # evicts 2 (LRU)
        assert tlb.lookup(2) == (False, -1)
        assert tlb.lookup(1)[0] and tlb.lookup(3)[0]

    def test_flush(self):
        tlb = L1TLB(4)
        tlb.fill(1, 10)
        tlb.flush()
        assert tlb.lookup(1) == (False, -1)


class TestL1TLBMRUFrontCache:
    """Invalidation and order-neutrality of the one-entry MRU front
    cache (fastlane ``tlb_mru``, docs/PERFORMANCE.md "Busy path")."""

    def test_mru_tracks_hits_and_fills(self):
        tlb = L1TLB(4)
        tlb.fill(1, 10)
        assert (tlb._mru_key, tlb._mru_frame) == (1, 10)
        tlb.fill(2, 20)
        assert tlb._mru_key == 2
        assert tlb.lookup(1) == (True, 10)
        assert (tlb._mru_key, tlb._mru_frame) == (1, 10)

    def test_flush_clears_mru(self):
        tlb = L1TLB(4)
        tlb.fill(1, 10)
        tlb.flush()
        assert tlb._mru_key is None
        assert tlb.lookup(1) == (False, -1)

    def test_mru_hit_preserves_lru_order(self):
        # The MRU probe skips move_to_end; the invariant (MRU key ==
        # most-recent LRU entry) makes that a no-op, so eviction order
        # must match a plain LRU exactly.
        tlb = L1TLB(2)
        tlb.fill(1, 10)
        tlb.fill(2, 20)
        assert tlb.lookup(2) == (True, 20)  # MRU front-cache hit
        tlb.fill(3, 30)  # must evict 1 (the true LRU), not 2
        assert tlb.lookup(1) == (False, -1)
        assert tlb.lookup(2) == (True, 20)

    def test_hit_accounting_exact_on_mru_path(self):
        tlb = L1TLB(4)
        tlb.fill(1, 10)
        tlb.lookup(1)
        tlb.lookup(1)  # MRU path must bump hits immediately
        assert (tlb.hits, tlb.misses) == (2, 0)

    def test_mru_disabled_keeps_plain_lru(self):
        from repro.sim import fastlane

        with fastlane.disabled():
            tlb = L1TLB(2)
            tlb.fill(1, 10)
            assert tlb._mru_key is None
            assert tlb.lookup(1) == (True, 10)
            assert tlb._mru_key is None


class TestL2TLB:
    def test_set_associative_eviction(self):
        tlb = L2TLB(entries=4, ways=2, latency=10)  # 2 sets
        # Keys 0, 2, 4 all map to set 0.
        tlb.fill(0, 1)
        tlb.fill(2, 2)
        tlb.fill(4, 3)  # evicts key 0
        assert tlb.lookup(0) == (False, -1)
        assert tlb.lookup(2)[0] and tlb.lookup(4)[0]

    def test_entries_must_divide(self):
        with pytest.raises(ValueError):
            L2TLB(entries=5, ways=2, latency=1)


class TestWalkerPool:
    def test_walk_latency(self):
        pool = WalkerPool(2, walk_latency=100)
        assert pool.schedule(0) == 100

    def test_concurrency_limit_serialises(self):
        pool = WalkerPool(2, walk_latency=100)
        assert pool.schedule(0) == 100
        assert pool.schedule(0) == 100
        # Third walk waits for the earliest walker to free up.
        assert pool.schedule(0) == 200
        assert pool.total_queue_delay == 100

    def test_walkers_free_over_time(self):
        pool = WalkerPool(1, walk_latency=10)
        pool.schedule(0)
        assert pool.schedule(50) == 60  # walker idle again

    def test_needs_a_walker(self):
        with pytest.raises(ValueError):
            WalkerPool(0, 10)


class FakeDriver(TranslationProvider):
    """Minimal driver: sequential frames, tracks faults."""

    def __init__(self):
        self.table = {}
        self.next_frame = 0
        self.faults = 0
        self._generation = 0

    def lookup_translation(self, vpage, sm_id):
        return self.table.get(vpage)

    def handle_fault(self, vpage, sm_id):
        self.faults += 1
        self.table[vpage] = self.next_frame
        self.next_frame += 1
        return self.table[vpage]

    @property
    def translation_generation(self):
        return self._generation


def _mmu(config=None, driver=None):
    config = config or TLBConfig(
        l1_entries=4, l2_entries=8, l2_ways=2, l2_latency=10,
        page_walkers=2, walk_latency=50, page_fault_cycles=1000,
    )
    driver = driver or FakeDriver()
    l2 = L2TLB(config.l2_entries, config.l2_ways, config.l2_latency)
    walkers = WalkerPool(config.page_walkers, config.walk_latency)
    return MMU(0, config, l2, walkers, driver), driver


class TestMMU:
    def test_first_touch_pays_fault(self):
        mmu, driver = _mmu()
        ready, frame = mmu.translate(7, now=0)
        assert driver.faults == 1
        assert frame == 0
        # l1 + l2 latency + walk + fault penalty.
        assert ready == 1 + 10 + 50 + 1000

    def test_l1_tlb_hit_is_fast(self):
        mmu, _ = _mmu()
        mmu.translate(7, now=0)
        ready, frame = mmu.translate(7, now=2000)
        assert ready == 2001  # 1-cycle L1 TLB hit
        assert frame == 0

    def test_l2_hit_after_l1_eviction(self):
        mmu, _ = _mmu()
        for vpage in range(5):  # L1 TLB holds 4: vpage 0 evicted
            mmu.translate(vpage, now=0)
        ready, _ = mmu.translate(0, now=10_000)
        # L1 miss + L2 hit: no walk (vpage 0 still in the 8-entry L2).
        assert ready == 10_000 + 1 + 10

    def test_shootdown_on_generation_bump(self):
        mmu, driver = _mmu()
        mmu.translate(7, now=0)
        driver.table[7] = 99
        driver._generation += 1
        _, frame = mmu.translate(7, now=5000)
        assert frame == 99  # stale entry flushed, re-walked

    def test_shootdown_clears_mru_front_cache(self):
        """The inline MRU probe in ``MMU.translate`` must never serve a
        frame across a translation-generation bump (TLB shootdown)."""
        mmu, driver = _mmu()
        mmu.translate(7, now=0)
        ready, frame = mmu.translate(7, now=100)
        assert (ready, frame) == (101, 0)  # MRU-warm 1-cycle L1 hit
        driver.table[7] = 99
        driver._generation += 1
        _, frame = mmu.translate(7, now=5000)
        assert frame == 99  # stale MRU entry flushed with the rest
        assert mmu.l1._mru_frame == 99  # refilled from the new walk

    def test_kernel_boundary_flush_keeps_l2(self):
        mmu, driver = _mmu()
        mmu.translate(7, now=0)
        mmu.flush()
        ready, _ = mmu.translate(7, now=10_000)
        assert ready == 10_000 + 11  # L2 hit, no new fault
        assert driver.faults == 1
