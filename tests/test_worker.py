"""Claim-loop tests: the service as coordinator of a worker fleet.

Covers the manager-level lease lifecycle (claim / complete / fail /
expiry, bounded by the same retry budget as local execution), the HTTP
claims API through :class:`~repro.service.worker.ServiceWorker`, and
the distributed acceptance test: a ``workers=0`` coordinator drained by
two workers produces stores bit-identical to a single-host sweep.
"""

import dataclasses
import json
import threading
import time

import pytest

from repro.experiments.runner import ExperimentRunner, RunKey
from repro.experiments.store import ResultStore
from repro.orchestrator import RemoteExecutor, SweepOrchestrator
from repro.service import (
    JobManager,
    ServiceClient,
    ServiceServer,
    ServiceWorker,
    SettingsMismatchError,
)

from tests.test_orchestrator import (
    TINY_SWEEP_KEYS,
    make_runner,
    tiny_gpu,
    tiny_sweep,
)


@pytest.fixture
def coordinator_factory():
    """Builds workers=0 managers: queues drain only via claims."""
    managers = []

    def build(runner=None, **kwargs):
        kwargs.setdefault("workers", 0)
        kwargs.setdefault("backoff", 0.0)
        manager = JobManager(runner if runner is not None
                             else make_runner(), **kwargs)
        managers.append(manager)
        return manager

    yield build
    for manager in managers:
        manager.shutdown(cancel_running=True)


def _submit_one(manager, key=None):
    job = manager.submit([(None, key or RunKey("KMEANS"))])
    (fingerprint,) = set(job.fingerprints.values())
    return job, fingerprint


class TestManagerClaims:
    def test_claim_empty_queue_returns_none(self, coordinator_factory):
        assert coordinator_factory().claim("w1") is None

    def test_coordinator_does_not_execute_locally(self,
                                                  coordinator_factory):
        manager = coordinator_factory()
        job, _ = _submit_one(manager)
        time.sleep(0.3)
        assert job.state == "queued"  # nothing drains a workers=0 queue

    def test_claim_complete_delivers_to_job(self, coordinator_factory):
        manager = coordinator_factory()
        job, _ = _submit_one(manager)
        execution = manager.claim("w1")
        assert execution is not None
        assert execution.claimed_by == "w1"
        assert execution.attempts == 1
        result = make_runner().run(execution.key)
        assert manager.complete_claim(execution.fingerprint,
                                      result) is not None
        assert job.state == "done"
        assert manager.counters["points_claimed"] == 1
        assert manager.counters["claims_completed"] == 1

    def test_fail_claim_requeues_then_fails(self, coordinator_factory):
        manager = coordinator_factory(retries=1)
        job, fingerprint = _submit_one(manager)
        first = manager.claim("w1")
        assert manager.fail_claim(fingerprint, "boom") == "requeued"
        assert job.state == "queued"
        second = manager.claim("w2")
        assert second is first  # same execution, new lease
        assert second.attempts == 2
        assert manager.fail_claim(fingerprint, "boom again") == "failed"
        assert job.state == "failed"
        label, _ = job.points[0]
        assert "boom again" in job.point_status[label].error

    def test_unknown_lease_rejected(self, coordinator_factory):
        manager = coordinator_factory()
        assert manager.complete_claim("deadbeef", object()) is None
        assert manager.fail_claim("deadbeef", "oops") is None

    def test_expired_lease_requeues_point(self, coordinator_factory):
        manager = coordinator_factory(retries=1,
                                      claim_ttl_seconds=0.1)
        _submit_one(manager)
        first = manager.claim("dying-worker")
        assert first is not None
        time.sleep(0.15)
        # Reap runs on the next queue access: the lease is gone and the
        # point is claimable again, charged one attempt.
        second = manager.claim("healthy-worker")
        assert second is first
        assert second.attempts == 2
        assert manager.counters["claims_expired"] == 1

    def test_expired_lease_exhausts_retry_budget(self,
                                                 coordinator_factory):
        manager = coordinator_factory(retries=0,
                                      claim_ttl_seconds=0.1)
        job, _ = _submit_one(manager)
        assert manager.claim("dying-worker") is not None
        time.sleep(0.15)
        manager.stats()  # any queue access reaps expired leases
        assert job.state == "failed"
        label, _ = job.points[0]
        assert "lease expired" in job.point_status[label].error

    def test_late_result_after_expiry_is_dropped(self,
                                                 coordinator_factory):
        manager = coordinator_factory(retries=1,
                                      claim_ttl_seconds=0.1)
        _submit_one(manager)
        execution = manager.claim("slow-worker")
        time.sleep(0.15)
        manager.stats()  # reap: the point was requeued
        late = make_runner().run(execution.key)
        assert manager.complete_claim(execution.fingerprint,
                                      late) is None

    def test_stats_exposes_claims_and_settings(self,
                                               coordinator_factory):
        manager = coordinator_factory()
        _submit_one(manager)
        manager.claim("w1")
        stats = manager.stats()
        assert stats["claims"]["active"] == 1
        assert stats["claims"]["workers"] == ["w1"]
        assert stats["settings"] == dict(
            manager.runner.cache_settings()
        )


@pytest.fixture
def coordinator_server(coordinator_factory, tmp_path):
    manager = coordinator_factory(
        runner=make_runner(tmp_path / "server"),
        retries=1, per_tenant=4,
    )
    server = ServiceServer(manager, port=0).start()
    yield server
    server.stop(shutdown_manager=False)


class TestServiceWorkerHTTP:
    def test_worker_drains_job_end_to_end(self, coordinator_server):
        client = ServiceClient(coordinator_server.url)
        job = client.submit(points=[(None, key)
                                    for key in TINY_SWEEP_KEYS])
        worker = ServiceWorker.from_service(coordinator_server.url,
                                            base_gpu=tiny_gpu(),
                                            poll_seconds=0.05)
        executed = worker.run(max_points=3)
        assert executed == 3
        assert worker.completed == 3 and worker.failed == 0
        payload = client.result(job["id"], wait=10.0)
        assert payload["state"] == "done"
        assert len(payload["results"]) == 3
        reference = make_runner()
        for key in TINY_SWEEP_KEYS:
            encoded = payload["results"][key.describe()]
            assert encoded["cycles"] == reference.run(key).cycles

    def test_worker_failure_consumes_retry_budget(self,
                                                  coordinator_server):
        client = ServiceClient(coordinator_server.url)
        job = client.submit(points=[(None, RunKey("NOPE"))])
        worker = ServiceWorker.from_service(coordinator_server.url,
                                            base_gpu=tiny_gpu(),
                                            poll_seconds=0.05)
        # retries=1: attempt, requeue, attempt, permanent failure.
        assert worker.run(max_points=2) == 2
        assert worker.failed == 2
        info = client.job(job["id"])
        assert info["state"] == "failed"

    def test_worker_adopts_service_settings(self, coordinator_server):
        worker = ServiceWorker.from_service(coordinator_server.url,
                                            base_gpu=tiny_gpu())
        server_settings = ServiceClient(
            coordinator_server.url).stats()["settings"]
        assert dict(worker.runner.cache_settings()) == \
            dict(server_settings)
        worker.check_settings()  # must not raise

    def test_check_settings_rejects_mismatch(self, coordinator_server):
        mismatched = ExperimentRunner(base_gpu=tiny_gpu(),
                                      mdr_epoch=123)
        worker = ServiceWorker(coordinator_server.url, mismatched)
        with pytest.raises(SettingsMismatchError):
            worker.check_settings()

    def test_idle_worker_exits_on_idle_timeout(self,
                                               coordinator_server):
        worker = ServiceWorker.from_service(coordinator_server.url,
                                            base_gpu=tiny_gpu(),
                                            poll_seconds=0.05)
        assert worker.run(idle_exit=0.2) == 0

    def test_claims_api_validates_payloads(self, coordinator_server):
        from repro.service import ServiceError

        client = ServiceClient(coordinator_server.url)
        client.submit(points=[(None, RunKey("KMEANS"))])
        claim = client.claim("w1")
        assert claim is not None and claim["claimed"]
        assert claim["lease_seconds"] > 0
        # Garbage result payload: 400, lease stays live.
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", f"/claims/{claim['fingerprint']}",
                            body={"result": {"_schema": -1}})
        assert excinfo.value.status == 400
        # Reporting against a fingerprint nobody leased: 409.
        with pytest.raises(ServiceError) as excinfo:
            client.fail("deadbeef", "nope")
        assert excinfo.value.status == 409
        # The live lease still completes normally.
        result = make_runner().run(RunKey("KMEANS"))
        assert client.complete(claim["fingerprint"], result)["state"] \
            == "done"


def _store_payloads(store_dir):
    """fingerprint-file -> parsed payload, for point-for-point compare."""
    return {
        path.name: json.loads(path.read_text())
        for path in sorted(store_dir.glob("*.json"))
    }


class TestDistributedAcceptance:
    def test_two_workers_match_single_host_bitwise(self, tmp_path):
        """workers=0 coordinator + 2 remote workers + RemoteExecutor
        sweep == single-host sweep, store-for-store and point-for-point.
        """
        server_store = tmp_path / "server"
        manager = JobManager(make_runner(server_store), workers=0,
                             retries=1, backoff=0.0, per_tenant=4)
        server = ServiceServer(manager, port=0).start()
        stop = threading.Event()
        workers = [
            ServiceWorker.from_service(server.url, base_gpu=tiny_gpu(),
                                       name=f"w{i}", poll_seconds=0.05)
            for i in (1, 2)
        ]
        threads = [
            threading.Thread(target=worker.run, kwargs={"stop": stop},
                             daemon=True)
            for worker in workers
        ]
        try:
            for thread in threads:
                thread.start()
            local_store = tmp_path / "local"
            backend = RemoteExecutor([server.url], steal_after=None,
                                     poll_interval=0.05)
            orchestrator = SweepOrchestrator(make_runner(local_store),
                                             workers=2, backend=backend,
                                             backoff=0.0)
            report = orchestrator.run(tiny_sweep())
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5)
            server.stop()

        assert report.ok
        assert report.mode == "remote"
        assert report.simulated == 3
        # Both workers saw traffic through one coordinator queue.
        assert sum(worker.completed for worker in workers) == 3
        assert manager.counters["claims_completed"] == 3

        # Single-host reference store.
        single_store = tmp_path / "single"
        single = SweepOrchestrator(make_runner(single_store),
                                   workers=1).run(tiny_sweep())
        assert single.ok

        reference = _store_payloads(single_store)
        assert len(reference) == 3
        assert _store_payloads(server_store) == reference
        assert _store_payloads(local_store) == reference

        # And the reports agree point-for-point.
        for key in TINY_SWEEP_KEYS:
            assert dataclasses.asdict(report.results[key]) == \
                dataclasses.asdict(single.results[key])
