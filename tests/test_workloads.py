"""Workload suite tests: Table 2 integrity and generator properties."""

import itertools

import pytest

from repro.config.presets import small_config
from repro.sim.request import AccessKind
from repro.sm.warp import Compute, MemAccess
from repro.workloads.benchmark import synthesize_ptx
from repro.workloads.patterns import Region
from repro.workloads.suite import (
    BENCHMARKS,
    HIGH_SHARING,
    LOW_SHARING,
    get_benchmark,
)

GPU = small_config()


class TestCatalogue:
    def test_29_benchmarks(self):
        """Table 2 lists 16 low-sharing and 13 high-sharing benchmarks."""
        assert len(BENCHMARKS) == 29
        assert len(LOW_SHARING) == 16
        assert len(HIGH_SHARING) == 13

    def test_expected_members(self):
        for abbr in ("LAVAMD", "LBM", "KMEANS", "MVT", "ATAX", "GESUMM"):
            assert abbr in LOW_SHARING
        for abbr in ("SC", "2MM", "BT", "AN", "SN", "RN", "GRU", "NW",
                     "BICG"):
            assert abbr in HIGH_SHARING

    def test_paper_footprints_recorded(self):
        assert BENCHMARKS["MVT"].footprint_mb == 6443
        assert BENCHMARKS["BICG"].ro_shared_mb == 472
        assert BENCHMARKS["BT"].ro_shared_mb == 36

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("NOPE")

    def test_structures_have_unique_regions(self):
        for bench in BENCHMARKS.values():
            regions = bench.layout()
            spans = sorted(
                (r.base_page, r.base_page + r.pages)
                for r in regions.values()
            )
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert end <= start  # no overlap


class TestCompilation:
    def test_all_benchmarks_instantiate(self):
        for bench in BENCHMARKS.values():
            workload = bench.instantiate(GPU)
            assert workload.compiled_kernels()

    def test_read_only_spaces_match_writes(self):
        """The compiler must never mark a structure read-only in a kernel
        that writes it (read-only is a per-kernel property, Section 5.2:
        2MM's c is written in kernel 1 and legitimately read-only in
        kernel 2)."""
        for bench in BENCHMARKS.values():
            workload = bench.instantiate(GPU)
            for spec, kernel in zip(bench.kernels,
                                    workload.compiled_kernels()):
                overlap = kernel.read_only_spaces & set(spec.writes)
                assert not overlap, (bench.abbr, spec.name, overlap)

    def test_dnn_weights_marked_read_only(self):
        workload = get_benchmark("AN").instantiate(GPU)
        kernel = workload.compiled_kernels()[0]
        assert "weights" in kernel.read_only_spaces

    def test_2mm_cross_kernel_read_only(self):
        """2MM's first kernel writes c; the second only reads it, so c is
        read-only *in the second kernel* (Section 5.2)."""
        workload = get_benchmark("2MM").instantiate(GPU)
        first, second = workload.compiled_kernels()
        assert "c" not in first.read_only_spaces
        assert "c" in second.read_only_spaces

    def test_synthesize_ptx_is_parseable(self):
        from repro.compiler.ptx import parse_kernel
        text = synthesize_ptx("k_test", ["a", "b"], ["b", "c"])
        kernel = parse_kernel(text)
        assert kernel.params == ["a", "b", "c"]


class TestGenerators:
    def _stream(self, abbr, cta=0, warp=0):
        workload = get_benchmark(abbr).instantiate(GPU)
        kernel = workload.compiled_kernels()[0]
        return list(kernel.warp_factory(cta, warp)), workload

    def test_deterministic(self):
        first, _ = self._stream("MVT")
        second, _ = self._stream("MVT")
        assert first == second

    def test_accesses_stay_in_regions(self):
        for abbr in ("KMEANS", "BT", "SC", "AN", "2DCONV"):
            stream, workload = self._stream(abbr)
            spans = {
                name: (r.base_page, r.base_page + r.pages)
                for name, r in workload.regions.items()
            }
            total = sum(r.pages for r in workload.regions.values())
            for instr in stream:
                if not isinstance(instr, MemAccess):
                    continue
                for vpage, line in instr.targets:
                    assert 0 <= vpage < total, abbr
                    assert 0 <= line < 32

    def test_streams_nonempty_and_bounded(self):
        for abbr, bench in BENCHMARKS.items():
            stream, _ = self._stream(abbr)
            mem = sum(1 for i in stream if isinstance(i, MemAccess))
            assert 8 <= mem <= 2000, f"{abbr}: {mem} accesses"

    def test_low_sharing_private_slabs_disjoint(self):
        """Different CTAs of a low-sharing benchmark touch different
        data pages (the defining property)."""
        stream_a, workload = self._stream("DWT2D", cta=0)
        stream_b, _ = self._stream("DWT2D", cta=31)
        region = workload.regions["data"]

        def data_pages(stream):
            pages = set()
            for instr in stream:
                if isinstance(instr, MemAccess):
                    for vpage, _ in instr.targets:
                        if region.base_page <= vpage < (
                                region.base_page + region.pages):
                            pages.add(vpage)
            return pages

        assert not (data_pages(stream_a) & data_pages(stream_b))

    def test_high_sharing_overlaps(self):
        stream_a, workload = self._stream("AN", cta=0)
        stream_b, _ = self._stream("AN", cta=31)
        region = workload.regions["weights"]

        def weight_pages(stream):
            return {
                vpage
                for instr in stream if isinstance(instr, MemAccess)
                for vpage, _ in instr.targets
                if region.base_page <= vpage < region.base_page + region.pages
            }

        assert weight_pages(stream_a) & weight_pages(stream_b)

    def test_ro_structures_never_stored(self):
        """Ground truth check: generators must not store to structures
        declared unwritten."""
        for abbr, bench in BENCHMARKS.items():
            written = {s.name for s in bench.structures if s.written}
            workload = bench.instantiate(GPU)
            spans = {
                name: (r.base_page, r.base_page + r.pages)
                for name, r in workload.regions.items()
            }
            for kernel in workload.compiled_kernels():
                for instr in itertools.islice(
                        kernel.warp_factory(0, 0), 500):
                    if not isinstance(instr, MemAccess):
                        continue
                    if instr.kind is not AccessKind.STORE:
                        continue
                    for name, (lo, hi) in spans.items():
                        if any(lo <= v < hi for v, _ in instr.targets):
                            assert name in written, (abbr, name)


class TestRegion:
    def test_page_wraps(self):
        region = Region("r", base_page=10, pages=4)
        assert region.page(0) == 10
        assert region.page(5) == 11

    def test_line_target(self):
        region = Region("r", 2, 2)
        assert region.line_target(0) == (2, 0)
        assert region.line_target(33) == (3, 1)
        assert region.line_target(64) == (2, 0)  # wraps

    def test_slab_partitioning(self):
        region = Region("r", 0, 32)
        slabs = [region.slab(i, 8) for i in range(8)]
        assert all(s.pages == 4 for s in slabs)
        bases = [s.base_page for s in slabs]
        assert bases == [0, 4, 8, 12, 16, 20, 24, 28]

    def test_slab_minimum_one_page(self):
        region = Region("r", 0, 2)
        assert region.slab(5, 8).pages == 1
